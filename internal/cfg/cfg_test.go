package cfg

import (
	"strings"
	"testing"

	"codetomo/internal/ir"
)

// diamond builds:
//
//	b0 -> b1, b2 (branch); b1 -> b3; b2 -> b3; b3 -> ret
func diamond() *Proc {
	return &Proc{
		Name:    "diamond",
		Entry:   0,
		NumTemp: 1,
		Blocks: []*Block{
			{ID: 0, Label: "entry", Term: ir.Br{Cond: 0, True: 1, False: 2}},
			{ID: 1, Label: "then", Term: ir.Jmp{Target: 3}},
			{ID: 2, Label: "else", Term: ir.Jmp{Target: 3}},
			{ID: 3, Label: "join", Term: ir.Ret{Val: -1}},
		},
	}
}

// loop builds:
//
//	b0 -> b1; b1 -> b2, b3 (branch); b2 -> b1 (back edge); b3 -> ret
func loopProc() *Proc {
	return &Proc{
		Name:    "loop",
		Entry:   0,
		NumTemp: 1,
		Blocks: []*Block{
			{ID: 0, Label: "entry", Term: ir.Jmp{Target: 1}},
			{ID: 1, Label: "head", Term: ir.Br{Cond: 0, True: 2, False: 3}},
			{ID: 2, Label: "body", Term: ir.Jmp{Target: 1}},
			{ID: 3, Label: "exit", Term: ir.Ret{Val: -1}},
		},
	}
}

func TestValidate(t *testing.T) {
	p := diamond()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Blocks[1].Term = ir.Jmp{Target: 9}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range successor accepted")
	}
	p = diamond()
	p.Blocks[2].Term = nil
	if err := p.Validate(); err == nil {
		t.Fatal("missing terminator accepted")
	}
	p = diamond()
	p.Blocks[0].ID = 5
	if err := p.Validate(); err == nil {
		t.Fatal("mismatched block ID accepted")
	}
}

func TestValidateTempConsistency(t *testing.T) {
	p := diamond()
	p.NumTemp = 0 // branch in b0 reads t0
	if err := p.Validate(); err == nil {
		t.Fatal("temp use beyond NumTemp accepted")
	}
	p = diamond()
	p.NumTemp = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative NumTemp accepted")
	}
	p = diamond()
	p.Blocks[1].Instrs = []ir.Instr{ir.Bin{Dst: 7, Op: ir.OpAdd, A: 0, B: 0}}
	if err := p.Validate(); err == nil {
		t.Fatal("temp def beyond NumTemp accepted")
	}
}

func TestValidateSrcPosParallel(t *testing.T) {
	p := diamond()
	p.NumTemp = 2
	p.Blocks[1].Instrs = []ir.Instr{ir.Const{Dst: 1, Val: 3}}
	p.Blocks[1].SrcPos = []ir.Pos{{Line: 1, Col: 1}, {Line: 2, Col: 1}}
	if err := p.Validate(); err == nil {
		t.Fatal("mismatched SrcPos length accepted")
	}
	p.Blocks[1].SrcPos = p.Blocks[1].SrcPos[:1]
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProgramValidateNamesOffender(t *testing.T) {
	bad := diamond()
	bad.Blocks[2].Term = nil
	prog := &Program{Procs: []*Proc{loopProc(), bad}}
	err := prog.Validate()
	if err == nil {
		t.Fatal("invalid program accepted")
	}
	if !strings.Contains(err.Error(), "proc 1 (diamond)") {
		t.Fatalf("error does not identify the offending proc: %v", err)
	}
}

func TestEdgesAndBranchBlocks(t *testing.T) {
	p := diamond()
	edges := p.Edges()
	if len(edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(edges))
	}
	bb := p.BranchBlocks()
	if len(bb) != 1 || bb[0] != 0 {
		t.Fatalf("branch blocks = %v, want [0]", bb)
	}
}

func TestPredsReachable(t *testing.T) {
	p := diamond()
	preds := p.Preds()
	if len(preds[3]) != 2 {
		t.Fatalf("preds of join = %v", preds[3])
	}
	// Add an unreachable block.
	p.Blocks = append(p.Blocks, &Block{ID: 4, Label: "dead", Term: ir.Ret{Val: -1}})
	r := p.Reachable()
	if r[4] {
		t.Fatal("unreachable block marked reachable")
	}
	if len(r) != 4 {
		t.Fatalf("reachable = %d blocks, want 4", len(r))
	}
}

func TestReversePostorder(t *testing.T) {
	p := diamond()
	rpo := p.ReversePostorder()
	if rpo[0] != 0 {
		t.Fatalf("rpo starts with %v, want entry", rpo[0])
	}
	pos := make(map[ir.BlockID]int)
	for i, id := range rpo {
		pos[id] = i
	}
	// Entry precedes both branches, branches precede join.
	if pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] || pos[2] > pos[3] {
		t.Fatalf("rpo order violated: %v", rpo)
	}
}

func TestExits(t *testing.T) {
	p := loopProc()
	exits := p.Exits()
	if len(exits) != 1 || exits[0] != 3 {
		t.Fatalf("exits = %v", exits)
	}
}

func TestDominators(t *testing.T) {
	p := diamond()
	idom := p.Dominators()
	if idom[0] != 0 {
		t.Fatal("entry must dominate itself")
	}
	if idom[1] != 0 || idom[2] != 0 {
		t.Fatalf("idom of branches = %v/%v, want 0", idom[1], idom[2])
	}
	if idom[3] != 0 {
		t.Fatalf("idom of join = %v, want 0 (not either branch)", idom[3])
	}
	if !Dominates(idom, 0, 3) {
		t.Fatal("entry must dominate join")
	}
	if Dominates(idom, 1, 3) {
		t.Fatal("then must not dominate join")
	}
}

func TestNaturalLoops(t *testing.T) {
	p := loopProc()
	loops := p.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Fatalf("header = %v, want 1", l.Header)
	}
	if !l.Body[1] || !l.Body[2] || l.Body[0] || l.Body[3] {
		t.Fatalf("body = %v", l.Body)
	}
	if len(l.BackEdges) != 1 || l.BackEdges[0].From != 2 {
		t.Fatalf("back edges = %v", l.BackEdges)
	}
	set := p.LoopBackEdgeSet()
	if !set[[2]ir.BlockID{2, 1}] {
		t.Fatal("back edge missing from set")
	}
}

func TestNoLoopsInDiamond(t *testing.T) {
	if loops := diamond().NaturalLoops(); len(loops) != 0 {
		t.Fatalf("diamond reported loops: %v", loops)
	}
}

func TestDOT(t *testing.T) {
	p := diamond()
	dot := p.DOT(map[[2]int]string{{0, 1}: "p=0.8"})
	for _, want := range []string{"digraph", "n0 -> n1", `label="p=0.8"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestProgramLookup(t *testing.T) {
	prog := &Program{Procs: []*Proc{diamond(), loopProc()}}
	if prog.Proc("loop") == nil || prog.Proc("nope") != nil {
		t.Fatal("Proc lookup broken")
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}
