package cfg

import (
	"sort"

	"codetomo/internal/ir"
)

// Dominators computes the immediate-dominator map for reachable blocks
// using the Cooper–Harvey–Kennedy iterative algorithm. The entry block's
// immediate dominator is itself.
func (p *Proc) Dominators() map[ir.BlockID]ir.BlockID {
	rpo := p.ReversePostorder()
	index := make(map[ir.BlockID]int, len(rpo))
	for i, id := range rpo {
		index[id] = i
	}
	preds := p.Preds()

	idom := make(map[ir.BlockID]ir.BlockID, len(rpo))
	idom[p.Entry] = p.Entry

	intersect := func(a, b ir.BlockID) ir.BlockID {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, id := range rpo {
			if id == p.Entry {
				continue
			}
			var newIdom ir.BlockID = -1
			for _, pr := range preds[id] {
				if _, ok := idom[pr]; !ok {
					continue // predecessor not yet processed (or unreachable)
				}
				if newIdom == -1 {
					newIdom = pr
				} else {
					newIdom = intersect(newIdom, pr)
				}
			}
			if newIdom == -1 {
				continue
			}
			if cur, ok := idom[id]; !ok || cur != newIdom {
				idom[id] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the given idom map.
func Dominates(idom map[ir.BlockID]ir.BlockID, a, b ir.BlockID) bool {
	for {
		if a == b {
			return true
		}
		parent, ok := idom[b]
		if !ok || parent == b {
			return false
		}
		b = parent
	}
}

// Loop describes a natural loop: its header and body (header included).
type Loop struct {
	Header ir.BlockID
	Body   map[ir.BlockID]bool
	// BackEdges lists the edges (tail→header) that define the loop.
	BackEdges []Edge
}

// NaturalLoops finds all natural loops: for each back edge t→h (where h
// dominates t), the loop body is h plus all blocks that can reach t without
// passing through h. Loops sharing a header are merged.
func (p *Proc) NaturalLoops() []Loop {
	idom := p.Dominators()
	reach := p.Reachable()
	preds := p.Preds()

	loops := make(map[ir.BlockID]*Loop)
	for _, e := range p.Edges() {
		if !reach[e.From] || !reach[e.To] {
			continue
		}
		if !Dominates(idom, e.To, e.From) {
			continue
		}
		h := e.To
		l, ok := loops[h]
		if !ok {
			l = &Loop{Header: h, Body: map[ir.BlockID]bool{h: true}}
			loops[h] = l
		}
		l.BackEdges = append(l.BackEdges, e)
		// Walk backwards from the tail collecting the body.
		stack := []ir.BlockID{e.From}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if l.Body[n] {
				continue
			}
			l.Body[n] = true
			for _, pr := range preds[n] {
				if reach[pr] {
					stack = append(stack, pr)
				}
			}
		}
	}

	out := make([]Loop, 0, len(loops))
	for _, l := range loops {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Header < out[j].Header })
	return out
}

// LoopBackEdgeSet returns the set of back edges across all natural loops,
// keyed by (from,to). The Ball–Larus heuristic and the layout pass use it.
func (p *Proc) LoopBackEdgeSet() map[[2]ir.BlockID]bool {
	set := make(map[[2]ir.BlockID]bool)
	for _, l := range p.NaturalLoops() {
		for _, e := range l.BackEdges {
			set[[2]ir.BlockID{e.From, e.To}] = true
		}
	}
	return set
}
