// Package lint turns the front end's diagnostics, the AST-level checks,
// and the dataflow analyses of internal/analysis into positioned,
// machine-readable findings over MiniC source files. It is the engine
// behind cmd/ctlint.
//
// Diagnostics come from four layers, cheapest first:
//
//  1. parse/check errors (fatal: later layers are skipped),
//  2. front-end warnings (unused locals and parameters),
//  3. AST lints (unreachable statements, constant branch conditions) —
//     these must run before lowering, which folds constant conditions
//     and deletes unreachable blocks,
//  4. CFG lints on the freshly lowered IR — dataflow (dead stores,
//     maybe-uninitialized reads) and value-range (dead-branch,
//     unreachable-block, loop-unbounded) — and static cost bounds on the
//     fully compiled program (stack depth, recursion, flash size, and
//     provable WCET cycles where the loop trip bounds allow one).
package lint

import (
	"errors"
	"fmt"
	"sort"

	"codetomo/internal/analysis"
	"codetomo/internal/cfg"
	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/isa"
	"codetomo/internal/minic"
)

// Severity grades a finding.
const (
	SevError   = "error"
	SevWarning = "warning"
	SevInfo    = "info"
)

// Diag is one positioned finding. The JSON form is the ctlint -json
// contract.
type Diag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Msg      string `json:"msg"`
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", d.File, d.Line, d.Col, d.Severity, d.Msg, d.Code)
}

// Options configures the cost-bound lints. The zero value uses the M16
// part limits from internal/isa.
type Options struct {
	// MaxStackWords caps the worst-case stack depth; 0 derives the budget
	// from the part's RAM minus the program's global segment.
	MaxStackWords int
	// MaxFlashBytes caps the encoded code size; 0 means isa.DefaultFlashBytes.
	MaxFlashBytes int
	// MaxCycles, when nonzero, warns on procedures whose provable
	// worst-case execution exceeds it. Applies to loop-free procedures and
	// to procedures whose every loop carries a provable trip bound; loops
	// that defeat the bound proof are reported separately
	// (loop-unbounded), since their static figure is only per-traversal.
	MaxCycles uint64
	// CostReport additionally emits an informational cost summary per
	// procedure (ctlint -costs).
	CostReport bool
	// PageReport additionally emits an informational flash-page report per
	// procedure (ctlint -pages): pages occupied, avoidable page straddles,
	// and cold-split candidate blocks under static branch priors.
	PageReport bool
}

type linter struct {
	file  string
	diags []Diag
}

func (l *linter) add(pos minic.Pos, sev, code, msg string) {
	l.diags = append(l.diags, Diag{
		File: l.file, Line: pos.Line, Col: pos.Col,
		Severity: sev, Code: code, Msg: msg,
	})
}

// Run lints one MiniC source file and returns all findings sorted by
// position. It never returns an error: failures to parse, check, or
// compile are themselves diagnostics (severity "error").
func Run(filename, src string, opts Options) []Diag {
	l := &linter{file: filename}

	f, err := minic.Parse(src)
	if err != nil {
		l.addErr(err, "parse-error")
		return l.finish()
	}
	warnings, err := minic.CheckWithDiagnostics(f)
	for _, w := range warnings {
		l.add(w.Pos, SevWarning, w.Code, w.Msg)
	}
	if err != nil {
		l.addErr(err, "check-error")
		return l.finish()
	}

	for _, fn := range f.Funcs {
		l.lintBlock(fn.Body)
	}

	l.lintCFG(f)
	l.lintCosts(f, src, opts)
	return l.finish()
}

// addErr records a fatal front-end error, recovering the position when
// the error is a positioned *minic.Error.
func (l *linter) addErr(err error, code string) {
	var me *minic.Error
	if errors.As(err, &me) {
		l.add(me.Pos, SevError, code, me.Msg)
		return
	}
	l.add(minic.Pos{Line: 1, Col: 1}, SevError, code, err.Error())
}

func (l *linter) finish() []Diag {
	sort.Slice(l.diags, func(i, j int) bool {
		a, b := l.diags[i], l.diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
	return l.diags
}

// ---- AST lints -----------------------------------------------------------

// lintBlock flags the first statement in the block that control cannot
// reach, then recurses into compound statements.
func (l *linter) lintBlock(b *minic.BlockStmt) {
	reached := true
	for _, s := range b.Stmts {
		if !reached {
			l.add(stmtPos(s), SevWarning, "unreachable", "statement is unreachable")
			reached = true // report once per dead region, keep linting it
		}
		l.lintStmt(s)
		if transfersAway(s) {
			reached = false
		}
	}
}

func (l *linter) lintStmt(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.BlockStmt:
		l.lintBlock(st)
	case *minic.IfStmt:
		if v, ok := constCond(st.Cond); ok {
			l.add(st.Cond.ExprPos(), SevWarning, "constant-cond",
				fmt.Sprintf("branch condition is always %s", trueFalse(v)))
			if !v {
				l.markDead(st.Then)
			} else if st.Else != nil {
				l.markDead(st.Else)
			}
		}
		l.lintBlock(st.Then)
		if st.Else != nil {
			l.lintBlock(st.Else)
		}
	case *minic.WhileStmt:
		// A constant-true loop condition (e.g. while(1)) is the idiomatic
		// event loop; only a constant-false one is suspicious.
		if v, ok := constCond(st.Cond); ok && !v {
			l.add(st.Cond.ExprPos(), SevWarning, "constant-cond", "loop condition is always false")
			l.markDead(st.Body)
		}
		l.lintBlock(st.Body)
	case *minic.ForStmt:
		if st.Cond != nil {
			if v, ok := constCond(st.Cond); ok && !v {
				l.add(st.Cond.ExprPos(), SevWarning, "constant-cond", "loop condition is always false")
				l.markDead(st.Body)
			}
		}
		l.lintBlock(st.Body)
	}
}

// markDead flags a block whose enclosing condition makes it unreachable.
func (l *linter) markDead(b *minic.BlockStmt) {
	if len(b.Stmts) > 0 {
		l.add(stmtPos(b.Stmts[0]), SevWarning, "unreachable", "statement is unreachable")
	}
}

// constCond reports whether the condition folds to a compile-time
// constant, and its truth value.
func constCond(e minic.Expr) (truth, ok bool) {
	v, err := minic.EvalConst(e)
	if err != nil {
		return false, false
	}
	return v != 0, true
}

func trueFalse(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

// transfersAway reports whether control never continues past the
// statement (mirrors the checker's alwaysReturns, extended to break and
// continue, which also end straight-line execution within a block).
func transfersAway(s minic.Stmt) bool {
	switch st := s.(type) {
	case *minic.ReturnStmt, *minic.BreakStmt, *minic.ContinueStmt:
		return true
	case *minic.BlockStmt:
		for _, inner := range st.Stmts {
			if transfersAway(inner) {
				return true
			}
		}
	case *minic.IfStmt:
		return st.Else != nil && blockTransfers(st.Then) && blockTransfers(st.Else)
	}
	return false
}

func blockTransfers(b *minic.BlockStmt) bool {
	for _, s := range b.Stmts {
		if transfersAway(s) {
			return true
		}
	}
	return false
}

func stmtPos(s minic.Stmt) minic.Pos {
	switch st := s.(type) {
	case *minic.BlockStmt:
		return st.Pos
	case *minic.DeclStmt:
		return st.Decl.Pos
	case *minic.AssignStmt:
		return st.Pos
	case *minic.IfStmt:
		return st.Pos
	case *minic.WhileStmt:
		return st.Pos
	case *minic.ForStmt:
		return st.Pos
	case *minic.ReturnStmt:
		return st.Pos
	case *minic.BreakStmt:
		return st.Pos
	case *minic.ContinueStmt:
		return st.Pos
	case *minic.ExprStmt:
		return st.Pos
	}
	return minic.Pos{}
}

// ---- CFG dataflow lints --------------------------------------------------

// lintCFG lowers the checked file and runs the dataflow lints that need a
// fresh CFG: dead stores, maybe-uninitialized reads, and the value-range
// lints (statically dead branches, value-unreachable blocks, loops without
// a provable trip bound). It must see the un-optimized lowering, whose
// SrcPos side tables still point at the statements the programmer wrote.
func (l *linter) lintCFG(f *minic.File) {
	prog, err := compile.Lower(f)
	if err != nil {
		l.addErr(err, "lower-error")
		return
	}
	for _, p := range prog.Procs {
		for _, ds := range analysis.DeadStores(p) {
			l.add(minic.Pos(ds.Pos), SevWarning, "dead-store",
				fmt.Sprintf("value stored to %q is never read", ds.Name))
		}
		for _, u := range analysis.MaybeUninitVars(p) {
			l.add(minic.Pos(u.Pos), SevWarning, "maybe-uninit",
				fmt.Sprintf("%q may be read before it is assigned", u.Name))
		}
		l.lintRanges(f, p)
	}
}

// lintRanges runs the interval analysis over one procedure and reports
// branches it proves one-way, blocks it proves can never run, and loops
// that exit but carry no provable iteration bound.
func (l *linter) lintRanges(f *minic.File, p *cfg.Proc) {
	r := analysis.InferRanges(p)

	resolved := r.ResolvedBranches()
	branches := make([]ir.BlockID, 0, len(resolved))
	for b := range resolved {
		branches = append(branches, b)
	}
	sort.Slice(branches, func(i, j int) bool { return branches[i] < branches[j] })
	for _, b := range branches {
		// The condition is computed at the end of the branch block; its
		// last recorded position is the if/while the programmer wrote.
		blk := p.Block(b)
		pos := blockPos(f, p, blk)
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			if ip := blk.InstrPos(i); ip.Line != 0 {
				pos = minic.Pos(ip)
				break
			}
		}
		l.add(pos, SevWarning, "dead-branch",
			fmt.Sprintf("condition in %q always takes the same arm: the value analysis proves the other side dead", p.Name))
	}

	for _, b := range r.DeadBlocks() {
		l.add(blockPos(f, p, p.Block(b)), SevWarning, "unreachable-block",
			fmt.Sprintf("code in %q can never execute: no feasible values reach it", p.Name))
	}

	trips := analysis.LoopTripBounds(p, r)
	headers := make([]ir.BlockID, 0, len(trips))
	for h := range trips {
		headers = append(headers, h)
	}
	sort.Slice(headers, func(i, j int) bool { return headers[i] < headers[j] })
	for _, h := range headers {
		tb := trips[h]
		// Deliberate event loops (while(1)) have no exit at all; only loops
		// that CAN terminate but defeat the bound proof are worth flagging.
		if tb.HasExit && !tb.Bounded {
			l.add(blockPos(f, p, p.Block(h)), SevInfo, "loop-unbounded",
				fmt.Sprintf("loop in %q has no provable iteration bound; worst-case cycle cost is open-ended", p.Name))
		}
	}
}

// blockPos finds a source position for a block-level finding: the first
// recorded instruction position in the block, else in its successors (a
// loop header may be a bare scaffolding block), else the enclosing
// function's position.
func blockPos(f *minic.File, p *cfg.Proc, b *cfg.Block) minic.Pos {
	for i := range b.Instrs {
		if pos := b.InstrPos(i); pos.Line != 0 {
			return minic.Pos(pos)
		}
	}
	for _, s := range b.Succs() {
		sb := p.Block(s)
		for i := range sb.Instrs {
			if pos := sb.InstrPos(i); pos.Line != 0 {
				return minic.Pos(pos)
			}
		}
	}
	return funcPos(f, p.Name)
}

// ---- Static cost bounds --------------------------------------------------

// lintCosts compiles the program (all passes on, IR verified) and checks
// the resulting binary against the part's limits: worst-case stack depth
// vs the RAM left over after globals, recursion (unbounded stack), code
// bytes vs flash, and optionally a per-procedure cycle ceiling.
func (l *linter) lintCosts(f *minic.File, src string, opts Options) {
	out, err := compile.Build(src, compile.Options{
		VerifyIR:     true,
		FuseCompares: true,
		RotateLoops:  true,
	})
	if err != nil {
		l.addErr(err, "build-error")
		return
	}

	flashLimit := opts.MaxFlashBytes
	if flashLimit == 0 {
		flashLimit = isa.DefaultFlashBytes
	}
	if int(out.Meta.CodeBytes) > flashLimit {
		l.add(funcPos(f, "main"), SevWarning, "cost-flash",
			fmt.Sprintf("code size %d bytes exceeds the %d-byte flash", out.Meta.CodeBytes, flashLimit))
	}

	// The stack budget is whatever RAM the global segment leaves free.
	budget := opts.MaxStackWords
	if budget == 0 {
		budget = isa.DefaultRAMWords - (compile.GlobalBase + out.Meta.GlobalWords)
	}

	bounds := analysis.StackBounds(out.CFG)
	for _, p := range out.CFG.Procs {
		pos := funcPos(f, p.Name)
		b := bounds[p.Name]
		if b.Recursive {
			l.add(pos, SevWarning, "cost-recursion",
				fmt.Sprintf("%q is recursive: worst-case stack depth is unbounded", p.Name))
		} else if b.Words > budget {
			l.add(pos, SevWarning, "cost-stack",
				fmt.Sprintf("%q needs up to %d stack words but only %d fit after globals", p.Name, b.Words, budget))
		}

		sb, err := out.ProcStaticBound(p.Name)
		if err != nil {
			l.addErr(err, "build-error")
			continue
		}
		if opts.MaxCycles > 0 && sb.Bounded && sb.Cycles > opts.MaxCycles {
			l.add(pos, SevWarning, "cost-cycles",
				fmt.Sprintf("%q worst-case execution is %d cycles, over the %d-cycle budget", p.Name, sb.Cycles, opts.MaxCycles))
		}
		if opts.CostReport {
			loopNote := ""
			if !sb.Bounded {
				loopNote = fmt.Sprintf(" per loop-free traversal (no provable bound for %s)",
					loopList(p, sb.UnboundedLoops))
			}
			l.add(pos, SevInfo, "cost-info",
				fmt.Sprintf("%q: <= %d cycles%s, stack %s, frame %d words",
					p.Name, sb.Cycles, loopNote, stackNote(b), analysis.FrameWords(p)))
		}
	}

	if opts.PageReport {
		l.lintPages(f, out)
	}
}

// loopList names loop-header blocks for a cost diagnostic, preferring the
// block label over the bare ID.
func loopList(p *cfg.Proc, heads []ir.BlockID) string {
	if len(heads) == 0 {
		return "its loops"
	}
	s := "loop at block "
	if len(heads) > 1 {
		s = "loops at blocks "
	}
	for i, h := range heads {
		if i > 0 {
			s += ", "
		}
		if lbl := p.Block(h).Label; lbl != "" {
			s += lbl
		} else {
			s += fmt.Sprintf("b%d", h)
		}
	}
	return s
}

func stackNote(b analysis.StackBound) string {
	if b.Recursive {
		return "unbounded (recursive)"
	}
	return fmt.Sprintf("<= %d words", b.Words)
}

func funcPos(f *minic.File, name string) minic.Pos {
	if fn := f.Func(name); fn != nil {
		return fn.Pos
	}
	return minic.Pos{Line: 1, Col: 1}
}
