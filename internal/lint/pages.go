package lint

import (
	"fmt"

	"codetomo/internal/cfg"
	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/layout"
	"codetomo/internal/minic"
	"codetomo/internal/profile"
)

// staticColdMaxWeight is the candidate threshold for the static cold-split
// report, in expected traversals per invocation under Ball–Larus branch
// priors. It is deliberately looser than the optimizer's measured-profile
// threshold (compile.PGOOptions.ColdMaxWeight, 0.01): priors are diffuse,
// so a block they already push well below one traversal per ten calls is
// worth surfacing as a candidate even without profile data.
const staticColdMaxWeight = 0.1

// lintPages emits the opt-in flash-page report (ctlint -pages): for every
// procedure, how many flash pages its code occupies — flagging procedures
// that straddle more pages than their size requires, which page-aware
// placement could fix — and which blocks static branch priors mark as
// cold-split candidates for the hot/cold splitting pass.
func (l *linter) lintPages(f *minic.File, out *compile.Output) {
	cost := out.Meta.Cost
	ps := cost.PageSizeBytes
	if ps == 0 {
		return
	}
	off := cost.ByteOffsets(out.Code)

	for _, p := range out.CFG.Procs {
		pm := out.Meta.ProcByName[p.Name]
		if pm == nil {
			continue
		}
		pos := funcPos(f, p.Name)

		startB, endB := off[pm.EntryAddr], off[pm.EndAddr]
		bytes := endB - startB
		firstPage, lastPage := startB/ps, (endB-1)/ps
		spanned := lastPage - firstPage + 1
		minimum := (bytes + ps - 1) / ps
		var span string
		if firstPage == lastPage {
			span = fmt.Sprintf("on flash page %d", firstPage)
		} else {
			span = fmt.Sprintf("across flash pages %d-%d", firstPage, lastPage)
		}
		msg := fmt.Sprintf("%q: %d code bytes %s (%d-byte pages)", p.Name, bytes, span, ps)
		if spanned > minimum {
			msg += fmt.Sprintf("; straddles %d more page(s) than its size needs", spanned-minimum)
		}
		l.add(pos, SevInfo, "page-info", msg)

		if cold := staticColdBlocks(p); len(cold) > 0 {
			l.add(pos, SevInfo, "cold-split",
				fmt.Sprintf("%q: %s cold under static branch priors (<= %g expected traversals per call); hot/cold splitting would keep %s off the hot path's pages",
					p.Name, blockList(p, cold), staticColdMaxWeight, itThem(len(cold))))
		}
	}
}

// staticColdBlocks mirrors the optimizer's cold-split classification, but
// seeded from Ball–Larus static priors instead of estimated probabilities:
// non-entry blocks whose expected traversal count per invocation falls at
// or below staticColdMaxWeight. Procedures where every non-entry block
// would qualify are skipped — a contrast-free prior says nothing about
// which half to move.
func staticColdBlocks(p *cfg.Proc) []ir.BlockID {
	w := layout.FromProbs(p, profile.BallLarusProbs(p))
	bw := make(map[ir.BlockID]float64, len(p.Blocks))
	bw[p.Entry] = 1
	for _, e := range p.Edges() {
		bw[e.To] += w[[2]ir.BlockID{e.From, e.To}]
	}
	var cold []ir.BlockID
	for _, b := range p.Blocks {
		if b.ID != p.Entry && bw[b.ID] <= staticColdMaxWeight {
			cold = append(cold, b.ID)
		}
	}
	if len(cold) == len(p.Blocks)-1 {
		return nil
	}
	return cold
}

// blockList names blocks for a diagnostic, preferring labels over bare IDs.
func blockList(p *cfg.Proc, blocks []ir.BlockID) string {
	s := "block "
	if len(blocks) > 1 {
		s = "blocks "
	}
	for i, b := range blocks {
		if i > 0 {
			s += ", "
		}
		if lbl := p.Block(b).Label; lbl != "" {
			s += lbl
		} else {
			s += fmt.Sprintf("b%d", b)
		}
	}
	return s
}

func itThem(n int) string {
	if n == 1 {
		return "it"
	}
	return "them"
}
