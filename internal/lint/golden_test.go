package lint

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

const examplesDir = "../../examples/minic"

// TestGoldenExamples lints every example program and compares the full
// diagnostic listing against a checked-in golden file. Run with -update
// after intentionally changing an example or a diagnostic message.
func TestGoldenExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(examplesDir, "*.mc"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, path := range files {
		base := filepath.Base(path)
		t.Run(base, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Lint under the base name so goldens are path-independent.
			var b strings.Builder
			for _, d := range Run(base, string(src), Options{}) {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()

			golden := filepath.Join("testdata", base+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed.\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenCoverage pins the acceptance contract: the example corpus must
// exercise every major diagnostic class.
func TestGoldenCoverage(t *testing.T) {
	need := map[string]bool{
		"unused-var": false, "unused-param": false, "unreachable": false,
		"constant-cond": false, "dead-store": false, "maybe-uninit": false,
		"cost-stack": false, "cost-recursion": false,
		"dead-branch": false, "unreachable-block": false, "loop-unbounded": false,
	}
	files, _ := filepath.Glob(filepath.Join(examplesDir, "*.mc"))
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range Run(filepath.Base(path), string(src), Options{}) {
			if d.Severity == SevError {
				t.Errorf("%s: example does not lint cleanly: %v", path, d)
			}
			if _, tracked := need[d.Code]; tracked {
				need[d.Code] = true
			}
		}
	}
	for code, seen := range need {
		if !seen {
			t.Errorf("no example triggers %q", code)
		}
	}
}

// TestJSONRoundTrip checks the -json contract: the encoded diagnostics
// decode back to the identical value.
func TestJSONRoundTrip(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(examplesDir, "lintdemo.mc"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run("lintdemo.mc", string(src), Options{})
	if len(diags) == 0 {
		t.Fatal("lintdemo produced no diagnostics")
	}
	data, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var back []Diag
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diags, back) {
		t.Fatalf("round trip changed the diagnostics:\n%v\n%v", diags, back)
	}
}

// TestCycleBudget checks the opt-in cost-cycles lint: with a one-cycle
// budget even the smallest loop-free procedure is over.
func TestCycleBudget(t *testing.T) {
	src := `
func helper(a int) int { return a + 1; }
func main() { debug(helper(2)); }`
	var hits int
	for _, d := range Run("t.mc", src, Options{MaxCycles: 1}) {
		if d.Code == "cost-cycles" {
			hits++
		}
	}
	// Both helper and main are loop-free and cost more than one cycle.
	if hits != 2 {
		t.Fatalf("cost-cycles fired %d times, want 2", hits)
	}
}

// TestCostReport checks -costs emits an informational summary per
// procedure.
func TestCostReport(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(examplesDir, "clean.mc"))
	if err != nil {
		t.Fatal(err)
	}
	var infos []Diag
	for _, d := range Run("clean.mc", string(src), Options{CostReport: true}) {
		if d.Severity != SevInfo {
			t.Fatalf("clean example has a non-info diagnostic: %v", d)
		}
		infos = append(infos, d)
	}
	if len(infos) != 2 { // update and main
		t.Fatalf("cost report entries = %d, want 2", len(infos))
	}
	for _, d := range infos {
		if d.Code != "cost-info" || !strings.Contains(d.Msg, "stack <=") {
			t.Fatalf("unexpected report entry: %v", d)
		}
	}
}

// TestPageReport checks -pages emits a flash-page occupancy entry per
// procedure and flags pagedemo's triply guarded fault arm as a cold-split
// candidate under the static branch priors.
func TestPageReport(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(examplesDir, "pagedemo.mc"))
	if err != nil {
		t.Fatal(err)
	}
	perCode := map[string][]Diag{}
	for _, d := range Run("pagedemo.mc", string(src), Options{PageReport: true}) {
		if d.Severity != SevInfo {
			t.Fatalf("pagedemo has a non-info diagnostic: %v", d)
		}
		perCode[d.Code] = append(perCode[d.Code], d)
	}
	if n := len(perCode["page-info"]); n != 3 { // fault, guard, main
		t.Fatalf("page-info entries = %d, want 3: %v", n, perCode["page-info"])
	}
	for _, d := range perCode["page-info"] {
		if !strings.Contains(d.Msg, "flash page") {
			t.Fatalf("page-info entry missing occupancy: %v", d)
		}
	}
	cold := perCode["cold-split"]
	if len(cold) != 1 || !strings.Contains(cold[0].Msg, `"guard"`) {
		t.Fatalf("cold-split entries = %v, want exactly guard's fault arm", cold)
	}
}

// TestGoldenPageReport pins the full -pages listing for the page demo.
func TestGoldenPageReport(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(examplesDir, "pagedemo.mc"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range Run("pagedemo.mc", string(src), Options{PageReport: true}) {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "pagedemo.mc.pages.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("page report changed.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEventLoopNotFlagged checks that a deliberate while(1) event loop —
// which has no exit at all — is not reported as loop-unbounded, while a
// data-dependent exit in the same program is.
func TestEventLoopNotFlagged(t *testing.T) {
	src := `
func main() {
	var n int = 0;
	while (sense() > 50) {
		n = n + 1;
	}
	while (1) {
		led(n & 1);
	}
}`
	var hits int
	for _, d := range Run("t.mc", src, Options{}) {
		if d.Code == "loop-unbounded" {
			hits++
			if d.Line != 4 {
				t.Errorf("loop-unbounded at line %d, want 4 (the data-dependent loop)", d.Line)
			}
		}
	}
	if hits != 1 {
		t.Fatalf("loop-unbounded fired %d times, want 1", hits)
	}
}

// TestParseErrorIsDiag checks fatal front-end failures surface as
// positioned error diagnostics rather than aborting the run.
func TestParseErrorIsDiag(t *testing.T) {
	diags := Run("bad.mc", "func main() { x = ; }", Options{})
	if len(diags) != 1 || diags[0].Severity != SevError || diags[0].Code != "parse-error" {
		t.Fatalf("diags = %v, want one parse-error", diags)
	}
	if diags[0].Line == 0 {
		t.Fatal("parse error lost its position")
	}
	diags = Run("bad.mc", "func main() { bogus(); }", Options{})
	if len(diags) != 1 || diags[0].Code != "check-error" {
		t.Fatalf("diags = %v, want one check-error", diags)
	}
}
