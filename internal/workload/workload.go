// Package workload generates the nondeterministic inputs that drive the
// benchmark programs — the "environment" of the sensor network. Each
// generator implements mote.SampleSource and feeds the simulated ADC (or
// entropy port). The regimes span what field deployments see: calm Gaussian
// noise, Poisson event bursts, regime-switching (Markov-modulated) sources,
// and slow diurnal drift. Branch probabilities inside the programs are
// induced by these distributions, which is what makes them stationary but
// unknown — the setting Code Tomography targets.
package workload

import (
	"math"

	"codetomo/internal/isa"
	"codetomo/internal/stats"
)

// clamp10 clamps to the mote ADC's 10-bit range [0, isa.ADCMaxReading].
func clamp10(v float64) uint16 {
	if v < 0 {
		return 0
	}
	if v > isa.ADCMaxReading {
		return isa.ADCMaxReading
	}
	return uint16(v)
}

// Gaussian produces N(Mean, Sigma²) readings clamped to the ADC range.
type Gaussian struct {
	Mean, Sigma float64
	rng         *stats.RNG
}

// NewGaussian returns a Gaussian source.
func NewGaussian(rng *stats.RNG, mean, sigma float64) *Gaussian {
	return &Gaussian{Mean: mean, Sigma: sigma, rng: rng}
}

// Next implements mote.SampleSource.
func (g *Gaussian) Next() uint16 { return clamp10(g.rng.Normal(g.Mean, g.Sigma)) }

// Uniform produces uniform readings in [Lo, Hi].
type Uniform struct {
	Lo, Hi uint16
	rng    *stats.RNG
}

// NewUniform returns a Uniform source.
func NewUniform(rng *stats.RNG, lo, hi uint16) *Uniform {
	if hi < lo {
		lo, hi = hi, lo
	}
	return &Uniform{Lo: lo, Hi: hi, rng: rng}
}

// Next implements mote.SampleSource.
func (u *Uniform) Next() uint16 {
	return u.Lo + uint16(u.rng.Intn(int(u.Hi-u.Lo)+1))
}

// PoissonEvents models a quiet baseline punctuated by event spikes: each
// reading is baseline noise, but with probability EventProb an event of
// geometric duration begins during which readings jump to the spike level.
type PoissonEvents struct {
	BaseMean, BaseSigma   float64
	SpikeMean, SpikeSigma float64
	// EventProb is the per-reading probability a new event starts.
	EventProb float64
	// MeanDuration is the mean number of readings an event lasts.
	MeanDuration float64

	rng       *stats.RNG
	remaining int
}

// NewPoissonEvents returns a bursty event source.
func NewPoissonEvents(rng *stats.RNG, eventProb, meanDuration float64) *PoissonEvents {
	return &PoissonEvents{
		BaseMean: 80, BaseSigma: 15,
		SpikeMean: 700, SpikeSigma: 60,
		EventProb:    eventProb,
		MeanDuration: meanDuration,
		rng:          rng,
	}
}

// Next implements mote.SampleSource.
func (p *PoissonEvents) Next() uint16 {
	if p.remaining == 0 && p.rng.Bernoulli(p.EventProb) {
		d := p.MeanDuration
		if d < 1 {
			d = 1
		}
		p.remaining = 1 + p.rng.Geometric(1/d)
	}
	if p.remaining > 0 {
		p.remaining--
		return clamp10(p.rng.Normal(p.SpikeMean, p.SpikeSigma))
	}
	return clamp10(p.rng.Normal(p.BaseMean, p.BaseSigma))
}

// MarkovModulated switches between regimes according to a Markov chain;
// each regime has its own Gaussian emission. It models environments whose
// statistics change on timescales longer than one reading (wind gusts,
// machinery duty cycles).
type MarkovModulated struct {
	// Stay[i] is the probability of remaining in regime i.
	Stay []float64
	// Mean and Sigma are per-regime emission parameters.
	Mean, Sigma []float64

	rng   *stats.RNG
	state int
}

// NewMarkovModulated returns a two-regime (calm/active) source.
func NewMarkovModulated(rng *stats.RNG, stayCalm, stayActive float64) *MarkovModulated {
	return &MarkovModulated{
		Stay:  []float64{stayCalm, stayActive},
		Mean:  []float64{120, 600},
		Sigma: []float64{25, 90},
		rng:   rng,
	}
}

// Next implements mote.SampleSource.
func (m *MarkovModulated) Next() uint16 {
	if !m.rng.Bernoulli(m.Stay[m.state]) {
		m.state = (m.state + 1) % len(m.Stay)
	}
	return clamp10(m.rng.Normal(m.Mean[m.state], m.Sigma[m.state]))
}

// Diurnal models a slow sinusoidal drift (temperature over a day) plus
// noise. Period is in readings.
type Diurnal struct {
	Base, Amplitude, Sigma float64
	Period                 int
	rng                    *stats.RNG
	t                      int
}

// NewDiurnal returns a diurnal-drift source.
func NewDiurnal(rng *stats.RNG, base, amplitude float64, period int) *Diurnal {
	if period <= 0 {
		period = 1024
	}
	return &Diurnal{Base: base, Amplitude: amplitude, Sigma: 12, Period: period, rng: rng}
}

// Next implements mote.SampleSource.
func (d *Diurnal) Next() uint16 {
	phase := 2 * math.Pi * float64(d.t%d.Period) / float64(d.Period)
	d.t++
	return clamp10(d.Base + d.Amplitude*math.Sin(phase) + d.rng.Normal(0, d.Sigma))
}

// Entropy is a full-range uniform word source for the RNG port.
type Entropy struct {
	rng *stats.RNG
}

// NewEntropy returns an entropy source.
func NewEntropy(rng *stats.RNG) *Entropy { return &Entropy{rng: rng} }

// Next implements mote.SampleSource.
func (e *Entropy) Next() uint16 { return uint16(e.rng.Intn(1 << 16)) }

// Named builds a workload regime by name — the harness sweeps these in the
// input-sensitivity experiment (F7).
func Named(name string, rng *stats.RNG) (interface{ Next() uint16 }, bool) {
	switch name {
	case "gaussian":
		return NewGaussian(rng, 300, 120), true
	case "uniform":
		return NewUniform(rng, 0, isa.ADCMaxReading), true
	case "bursty":
		return NewPoissonEvents(rng, 0.05, 8), true
	case "regime":
		return NewMarkovModulated(rng, 0.95, 0.85), true
	case "diurnal":
		return NewDiurnal(rng, 400, 250, 512), true
	}
	return nil, false
}

// RegimeNames lists the named workloads in sweep order.
func RegimeNames() []string {
	return []string{"gaussian", "uniform", "bursty", "regime", "diurnal"}
}
