package workload

import (
	"testing"

	"codetomo/internal/stats"
)

func TestClampRange(t *testing.T) {
	srcs := []interface{ Next() uint16 }{
		NewGaussian(stats.NewRNG(1), 500, 400),
		NewUniform(stats.NewRNG(2), 10, 20),
		NewPoissonEvents(stats.NewRNG(3), 0.1, 5),
		NewMarkovModulated(stats.NewRNG(4), 0.9, 0.8),
		NewDiurnal(stats.NewRNG(5), 400, 300, 128),
	}
	for i, s := range srcs {
		for k := 0; k < 5000; k++ {
			if v := s.Next(); v > 1023 {
				t.Fatalf("source %d produced %d > 1023", i, v)
			}
		}
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(stats.NewRNG(7), 100, 110)
	seen := make(map[uint16]bool)
	for i := 0; i < 10000; i++ {
		v := u.Next()
		if v < 100 || v > 110 {
			t.Fatalf("uniform out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 11 {
		t.Fatalf("uniform support = %d values, want 11", len(seen))
	}
	// Swapped bounds are normalized.
	u2 := NewUniform(stats.NewRNG(8), 50, 40)
	if u2.Lo != 40 || u2.Hi != 50 {
		t.Fatal("bounds not normalized")
	}
}

func TestGaussianMean(t *testing.T) {
	g := NewGaussian(stats.NewRNG(9), 300, 20)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(g.Next())
	}
	mean := sum / float64(n)
	if mean < 295 || mean > 305 {
		t.Fatalf("mean = %v, want ~300", mean)
	}
}

func TestPoissonEventsBimodal(t *testing.T) {
	p := NewPoissonEvents(stats.NewRNG(11), 0.05, 8)
	low, high := 0, 0
	for i := 0; i < 20000; i++ {
		v := p.Next()
		if v < 300 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("not bimodal: low=%d high=%d", low, high)
	}
	// Events with p=0.05, mean duration 8 → roughly 30% of time in spike.
	frac := float64(high) / 20000
	if frac < 0.1 || frac > 0.6 {
		t.Fatalf("spike fraction = %v, outside plausible band", frac)
	}
}

func TestMarkovModulatedSwitches(t *testing.T) {
	m := NewMarkovModulated(stats.NewRNG(13), 0.9, 0.9)
	switches := 0
	prevHigh := false
	for i := 0; i < 20000; i++ {
		high := m.Next() > 350
		if i > 0 && high != prevHigh {
			switches++
		}
		prevHigh = high
	}
	if switches < 100 {
		t.Fatalf("regime switches = %d, want many", switches)
	}
}

func TestDiurnalPeriodicity(t *testing.T) {
	d := NewDiurnal(stats.NewRNG(15), 400, 200, 100)
	// Average first quarter (rising) vs third quarter (falling below base).
	var q1, q3 float64
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(d.Next())
	}
	for i := 10; i < 40; i++ {
		q1 += vals[i]
	}
	for i := 60; i < 90; i++ {
		q3 += vals[i]
	}
	if q1 <= q3 {
		t.Fatalf("no sinusoidal structure: q1=%v q3=%v", q1/30, q3/30)
	}
}

func TestNamedRegistry(t *testing.T) {
	for _, name := range RegimeNames() {
		src, ok := Named(name, stats.NewRNG(1))
		if !ok || src == nil {
			t.Fatalf("regime %q missing", name)
		}
	}
	if _, ok := Named("nope", stats.NewRNG(1)); ok {
		t.Fatal("unknown regime accepted")
	}
}

func TestEntropyFullRange(t *testing.T) {
	e := NewEntropy(stats.NewRNG(17))
	var hi bool
	for i := 0; i < 1000; i++ {
		if e.Next() > 1023 {
			hi = true
			break
		}
	}
	if !hi {
		t.Fatal("entropy never exceeded ADC range; not full width")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewPoissonEvents(stats.NewRNG(42), 0.05, 8)
	b := NewPoissonEvents(stats.NewRNG(42), 0.05, 8)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}
