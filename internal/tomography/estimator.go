package tomography

import "codetomo/internal/markov"

// Estimator is the common interface over the three Code Tomography
// estimation strategies, letting the harness sweep them uniformly.
type Estimator interface {
	// Name identifies the estimator in reports.
	Name() string
	// Estimate recovers branch probabilities from end-to-end duration
	// samples in cycles.
	Estimate(m *Model, samples []float64) (markov.EdgeProbs, error)
}

// EM is the path-mixture expectation-maximization estimator (primary).
type EM struct {
	Config EMConfig
}

// Name implements Estimator.
func (EM) Name() string { return "em" }

// Estimate implements Estimator.
func (e EM) Estimate(m *Model, samples []float64) (markov.EdgeProbs, error) {
	probs, _, err := EstimateEM(m, samples, e.Config)
	return probs, err
}

// Moments is the analytic mean/variance matching estimator.
type Moments struct {
	Config MomentsConfig
}

// Name implements Estimator.
func (Moments) Name() string { return "moments" }

// Estimate implements Estimator.
func (e Moments) Estimate(m *Model, samples []float64) (markov.EdgeProbs, error) {
	return EstimateMoments(m, samples, e.Config)
}

// Histogram is the binned nonnegative least-squares estimator.
type Histogram struct {
	Config HistogramConfig
}

// Name implements Estimator.
func (Histogram) Name() string { return "histogram" }

// Estimate implements Estimator.
func (e Histogram) Estimate(m *Model, samples []float64) (markov.EdgeProbs, error) {
	return EstimateHistogram(m, samples, e.Config)
}
