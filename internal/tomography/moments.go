package tomography

import (
	"fmt"
	"math"

	"codetomo/internal/markov"
	"codetomo/internal/stats"
)

// MomentsConfig tunes the moment-matching estimator.
type MomentsConfig struct {
	// Sweeps is the number of coordinate-descent passes (default 30).
	Sweeps int
	// VarWeight weights the variance residual relative to the mean
	// residual in the objective (default 1).
	VarWeight float64
	// Eps bounds probabilities away from {0,1} (default 1e-3).
	Eps float64
}

func (c MomentsConfig) withDefaults() MomentsConfig {
	if c.Sweeps <= 0 {
		c.Sweeps = 30
	}
	if c.VarWeight <= 0 {
		c.VarWeight = 1
	}
	if c.Eps <= 0 {
		c.Eps = 1e-3
	}
	return c
}

// EstimateMoments fits branch probabilities by matching the chain's
// analytic duration mean and variance (from the absorbing-chain fundamental
// matrix) to the sample moments, using coordinate descent with
// golden-section line search on each branch's probability.
//
// With only two moments the problem is underdetermined when the procedure
// has more than two effective unknowns — that is the method's documented
// limitation and exactly why the EM estimator is the primary one; the
// ablation experiment (T3) quantifies the gap.
func EstimateMoments(m *Model, samples []float64, cfg MomentsConfig) (markov.EdgeProbs, error) {
	cfg = cfg.withDefaults()
	if len(m.Unknowns) == 0 {
		return m.InitialProbs(), nil
	}
	if len(samples) < 2 {
		return nil, fmt.Errorf("tomography: moment matching needs at least 2 samples, got %d", len(samples))
	}
	for _, u := range m.Unknowns {
		if len(u.Edges) != 2 {
			return nil, fmt.Errorf("tomography: moment matching supports binary branches only; block %v has %d successors", u.Block, len(u.Edges))
		}
	}

	var acc stats.Moments
	for _, s := range samples {
		acc.Push(s)
	}
	wantMean, wantVar := acc.Mean(), acc.Variance()

	probs := m.InitialProbs()
	objective := func() float64 {
		chain, err := markov.New(m.Proc, probs)
		if err != nil {
			return math.Inf(1)
		}
		mean, variance, err := chain.MeanVar(m.Costs)
		if err != nil {
			return math.Inf(1)
		}
		dm := (mean - wantMean) / math.Max(wantMean, 1)
		dv := (variance - wantVar) / math.Max(wantVar, 1)
		return dm*dm + cfg.VarWeight*dv*dv
	}

	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		moved := 0.0
		for _, u := range m.Unknowns {
			e0, e1 := u.Edges[0], u.Edges[1]
			old := probs[e0]
			best := golden(func(p float64) float64 {
				probs[e0] = p
				probs[e1] = 1 - p
				return objective()
			}, cfg.Eps, 1-cfg.Eps, 40)
			probs[e0] = best
			probs[e1] = 1 - best
			moved += math.Abs(best - old)
		}
		if moved < 1e-7 {
			break
		}
	}
	return probs, nil
}

// golden minimizes f on [lo, hi] by golden-section search.
func golden(f func(float64) float64, lo, hi float64, iters int) float64 {
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < iters; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		}
	}
	if f1 < f2 {
		return x1
	}
	return x2
}
