package tomography

import (
	"fmt"
	"math"

	"codetomo/internal/ir"
	"codetomo/internal/linalg"
	"codetomo/internal/markov"
)

// HistogramConfig tunes the histogram least-squares estimator.
type HistogramConfig struct {
	// BinWidth in cycles; <= 0 derives it from the kernel half width.
	BinWidth float64
	// KernelHalfWidth is the quantization half width in cycles (default 8).
	KernelHalfWidth float64
	// Alpha is the M-step smoothing (default 0.5).
	Alpha float64
	// MaxIter bounds the NNLS projected-gradient iterations (default 3000).
	MaxIter int
	// MaxPaths bounds the design matrix's column count; models whose path
	// set is larger are rejected (default 4096). The EM estimator handles
	// such procedures; the histogram method's dense system does not scale
	// to them.
	MaxPaths int
	// MaxBins bounds the design matrix's row count (default 2048).
	MaxBins int
}

func (c HistogramConfig) withDefaults() HistogramConfig {
	if c.KernelHalfWidth <= 0 {
		c.KernelHalfWidth = 8
	}
	if c.BinWidth <= 0 {
		c.BinWidth = math.Max(c.KernelHalfWidth, 1)
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 3000
	}
	if c.MaxPaths <= 0 {
		c.MaxPaths = 4096
	}
	if c.MaxBins <= 0 {
		c.MaxBins = 2048
	}
	return c
}

// EstimateHistogram recovers branch probabilities by binning the duration
// samples and solving a nonnegative least-squares system for the path
// weights: each path contributes its kernel mass to the bins its duration
// overlaps, so  A·w ≈ ĥ  with w ≥ 0, where ĥ is the empirical bin
// frequency vector. Edge probabilities follow from the weighted edge
// traversal counts.
func EstimateHistogram(m *Model, samples []float64, cfg HistogramConfig) (markov.EdgeProbs, error) {
	cfg = cfg.withDefaults()
	if len(m.Unknowns) == 0 {
		return m.InitialProbs(), nil
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("tomography: no samples")
	}
	if len(m.Paths) > cfg.MaxPaths {
		return nil, fmt.Errorf("tomography: histogram estimator limited to %d paths, model has %d", cfg.MaxPaths, len(m.Paths))
	}

	lo, hi := samples[0], samples[0]
	for _, s := range samples {
		lo, hi = math.Min(lo, s), math.Max(hi, s)
	}
	for _, tau := range m.PathTimes {
		lo, hi = math.Min(lo, tau), math.Max(hi, tau)
	}
	lo -= cfg.KernelHalfWidth
	hi += cfg.KernelHalfWidth + 1e-9
	nBins := int(math.Ceil((hi - lo) / cfg.BinWidth))
	if nBins < 1 {
		nBins = 1
	}
	// The projected-gradient NNLS solver tolerates underdetermined
	// systems, so the bin count only needs to bound memory, not rank.
	if nBins > cfg.MaxBins {
		nBins = cfg.MaxBins
	}
	binW := (hi - lo) / float64(nBins)

	// Empirical bin frequencies.
	h := make([]float64, nBins)
	binOf := func(x float64) int {
		i := int((x - lo) / binW)
		if i < 0 {
			return 0
		}
		if i >= nBins {
			return nBins - 1
		}
		return i
	}
	for _, s := range samples {
		h[binOf(s)]++
	}
	for i := range h {
		h[i] /= float64(len(samples))
	}

	// Design matrix: kernel mass of each path per bin (box kernel of half
	// width KernelHalfWidth centered at the path duration).
	a := linalg.NewMatrix(nBins, len(m.Paths))
	for j, tau := range m.PathTimes {
		klo, khi := tau-cfg.KernelHalfWidth, tau+cfg.KernelHalfWidth
		width := khi - klo
		if width <= 0 {
			a.Add(binOf(tau), j, 1)
			continue
		}
		for b := binOf(klo); b <= binOf(khi); b++ {
			blo := lo + float64(b)*binW
			bhi := blo + binW
			overlap := math.Min(bhi, khi) - math.Max(blo, klo)
			if overlap > 0 {
				a.Add(b, j, overlap/width)
			}
		}
	}

	w, err := linalg.NNLS(a, h, cfg.MaxIter)
	if err != nil {
		return nil, err
	}

	// Convert path weights to expected edge traversals.
	edgeW := make(map[[2]ir.BlockID]float64)
	for j, p := range m.Paths {
		if w[j] <= 0 {
			continue
		}
		for _, arc := range p.Arcs {
			edgeW[arc.Edge] += w[j] * float64(arc.Count)
		}
	}
	return m.probsFromEdgeWeights(edgeW, cfg.Alpha), nil
}
