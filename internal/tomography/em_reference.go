package tomography

import (
	"math"

	"codetomo/internal/ir"
	"codetomo/internal/markov"
)

// EstimateEMReference is the original map-based EM kernel, retained
// verbatim as the numerical oracle: the dense kernel behind EstimateEM is
// pinned bit-for-bit against it by the equivalence and property tests, and
// the committed BENCH_PR4.json speedups are measured against it. It scans
// every path per observation and allocates fresh maps per iteration — do
// not use it outside tests and benchmarks.
//
// Unlike EstimateEM it does not validate samples; callers own finiteness.
func EstimateEMReference(m *Model, samples []float64, cfg EMConfig) (markov.EdgeProbs, EMStats, error) {
	cfg = cfg.withDefaults()
	var st EMStats
	if len(m.Unknowns) == 0 {
		return m.InitialProbs(), st, nil
	}
	if len(samples) == 0 {
		return nil, st, ErrNoSamples
	}

	obs, counts := dedup(samples)

	probs := m.InitialProbs()
	if cfg.Init != nil {
		for e, v := range cfg.Init {
			if _, ok := probs[e]; ok {
				probs[e] = v
			}
		}
	}
	nPaths := len(m.Paths)

	// Precompute kernel support per observation.
	type support struct {
		paths []int
		vals  []float64 // kernel value (box: 1)
	}
	supports := make([]support, len(obs))
	for i, t := range obs {
		var s support
		for j, tau := range m.PathTimes {
			if math.Abs(t-tau) <= cfg.KernelHalfWidth {
				s.paths = append(s.paths, j)
				s.vals = append(s.vals, 1)
			}
		}
		if len(s.paths) == 0 {
			// No path within the kernel: soft-assign to the nearest path
			// so the observation still informs the estimate.
			best, bd := -1, math.Inf(1)
			for j, tau := range m.PathTimes {
				if d := math.Abs(t - tau); d < bd {
					best, bd = j, d
				}
			}
			s.paths = []int{best}
			s.vals = []float64{1}
			st.Unmatched += counts[i]
		}
		supports[i] = s
	}

	prior := make([]float64, nPaths)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		st.Iterations = iter + 1
		// Path priors under current θ.
		for j, p := range m.Paths {
			prior[j] = p.Prob(probs)
		}

		// E-step + M-step accumulation.
		edgeW := make(map[[2]ir.BlockID]float64) // edge → expected traversals
		ll := 0.0
		for i := range obs {
			s := supports[i]
			den := 0.0
			for k, j := range s.paths {
				den += prior[j] * s.vals[k]
			}
			if den <= 0 {
				// All supported paths currently have zero prior (can
				// happen before smoothing kicks in); fall back to uniform
				// responsibility over the support.
				gamma := float64(counts[i]) / float64(len(s.paths))
				for _, j := range s.paths {
					accumulate(edgeW, m.Paths[j], gamma)
				}
				continue
			}
			ll += float64(counts[i]) * math.Log(den)
			for k, j := range s.paths {
				gamma := prior[j] * s.vals[k] / den * float64(counts[i])
				accumulate(edgeW, m.Paths[j], gamma)
			}
		}
		st.LogLikelihood = ll

		// M-step: renormalize per branch block with smoothing.
		next := probs.Clone()
		maxDelta := 0.0
		for _, u := range m.Unknowns {
			total := 0.0
			for _, e := range u.Edges {
				total += edgeW[e] + cfg.Alpha
			}
			if total <= 0 {
				continue
			}
			for _, e := range u.Edges {
				p := (edgeW[e] + cfg.Alpha) / total
				if d := math.Abs(p - next[e]); d > maxDelta {
					maxDelta = d
				}
				next[e] = p
			}
		}
		probs = next
		if maxDelta < cfg.Tol {
			st.Converged = true
			break
		}
	}
	return probs, st, nil
}

func accumulate(edgeW map[[2]ir.BlockID]float64, p *markov.Path, gamma float64) {
	// Iterate the ordered arc list, not the map: floating-point sums must
	// be reproducible run to run.
	for _, a := range p.Arcs {
		edgeW[a.Edge] += gamma * float64(a.Count)
	}
}
