package tomography

import (
	"fmt"
	"testing"

	"codetomo/internal/ir"
	"codetomo/internal/markov"
	"codetomo/internal/stats"
)

// BenchmarkEstimateEM is the baseline for the estimation hot loop: one
// branch, quantized durations, default EM settings. The dedup pass makes
// cost a function of distinct durations, not raw sample count, so the two
// sizes should be close per op.
func BenchmarkEstimateEM(b *testing.B) {
	for _, n := range []int{500, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := twoArmModel(b, 40)
			truth := markov.Uniform(m.Proc)
			truth[[2]ir.BlockID{0, 1}] = 0.7
			truth[[2]ir.BlockID{0, 2}] = 0.3
			samples := sampleDurations(b, m, truth, n, 4, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := EstimateEM(m, samples, EMConfig{KernelHalfWidth: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// pathScaledSetup builds a diamond-chain model with 2^k enumerated paths
// and a quantized sample set — the scaling corpus for the dense-vs-
// reference benchmarks. Everything derives from the fixed seed, so the
// dense and reference benchmarks run on identical inputs.
func pathScaledSetup(b *testing.B, diamonds, n int) (*Model, []float64, EMConfig) {
	b.Helper()
	rng := stats.NewRNG(int64(diamonds) * 1009)
	m := randomModel(b, rng, diamonds)
	truth := randomTruth(m, rng)
	samples := sampleDurations(b, m, truth, n, 4, 5)
	return m, samples, EMConfig{KernelHalfWidth: 8, MaxIter: 30}
}

// BenchmarkEstimateEMPaths scales the dense kernel over path-set size —
// the ISSUE's headline measurement (256/1024/4096 paths).
func BenchmarkEstimateEMPaths(b *testing.B) {
	for _, diamonds := range []int{8, 10, 12} {
		b.Run(fmt.Sprintf("paths=%d", 1<<diamonds), func(b *testing.B) {
			m, samples, cfg := pathScaledSetup(b, diamonds, 2000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := EstimateEM(m, samples, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateEMReferencePaths is the retained map-based kernel on
// the same corpus — the denominator of the committed speedups.
func BenchmarkEstimateEMReferencePaths(b *testing.B) {
	for _, diamonds := range []int{8, 10, 12} {
		b.Run(fmt.Sprintf("paths=%d", 1<<diamonds), func(b *testing.B) {
			m, samples, cfg := pathScaledSetup(b, diamonds, 2000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := EstimateEMReference(m, samples, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildSupports isolates observation-support construction: the
// O(n·log paths) binary-search pass that replaced the O(n·paths) scan.
func BenchmarkBuildSupports(b *testing.B) {
	for _, diamonds := range []int{8, 10, 12} {
		b.Run(fmt.Sprintf("paths=%d", 1<<diamonds), func(b *testing.B) {
			m, samples, cfg := pathScaledSetup(b, diamonds, 2000)
			obs, counts := dedup(samples)
			times := m.compiled().times
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buildSupports(times, obs, counts, cfg.KernelHalfWidth)
			}
		})
	}
}

// BenchmarkObserveWarmVsCold measures one Incremental round at equal
// accumulated sample counts: "cold" solves 2000 samples from the uniform
// start (round one), "warm" has already seen 1900 and folds in the last
// 100 — the steady-state cost the warm start and the running histogram
// are meant to shrink.
func BenchmarkObserveWarmVsCold(b *testing.B) {
	m, samples, _ := pathScaledSetup(b, 10, 2000)
	// Streaming tolerance: tight enough to act on, loose enough that a
	// warm start lands within a handful of iterations. (At very tight
	// tolerances EM's slow geometric tail dominates both rounds and the
	// warm advantage shrinks.)
	est := EM{Config: EMConfig{KernelHalfWidth: 4, Tol: 1e-4}}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inc := NewIncremental(m, est, 1e-3, 2)
			if _, err := inc.Observe(samples); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			inc := NewIncremental(m, est, 1e-3, 1<<30)
			if _, err := inc.Observe(samples[:1900]); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := inc.Observe(samples[1900:]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkIncrementalObserve(b *testing.B) {
	m := twoArmModel(b, 40)
	truth := markov.Uniform(m.Proc)
	truth[[2]ir.BlockID{0, 1}] = 0.7
	truth[[2]ir.BlockID{0, 2}] = 0.3
	samples := sampleDurations(b, m, truth, 2000, 4, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inc := NewIncremental(m, EM{Config: EMConfig{KernelHalfWidth: 4}}, 1e-3, 2)
		for j := 0; j < len(samples); j += 250 {
			if _, err := inc.Observe(samples[j : j+250]); err != nil {
				b.Fatal(err)
			}
		}
	}
}
