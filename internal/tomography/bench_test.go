package tomography

import (
	"fmt"
	"testing"

	"codetomo/internal/ir"
	"codetomo/internal/markov"
)

// BenchmarkEstimateEM is the baseline for the estimation hot loop: one
// branch, quantized durations, default EM settings. The dedup pass makes
// cost a function of distinct durations, not raw sample count, so the two
// sizes should be close per op.
func BenchmarkEstimateEM(b *testing.B) {
	for _, n := range []int{500, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := twoArmModel(b, 40)
			truth := markov.Uniform(m.Proc)
			truth[[2]ir.BlockID{0, 1}] = 0.7
			truth[[2]ir.BlockID{0, 2}] = 0.3
			samples := sampleDurations(b, m, truth, n, 4, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := EstimateEM(m, samples, EMConfig{KernelHalfWidth: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIncrementalObserve(b *testing.B) {
	m := twoArmModel(b, 40)
	truth := markov.Uniform(m.Proc)
	truth[[2]ir.BlockID{0, 1}] = 0.7
	truth[[2]ir.BlockID{0, 2}] = 0.3
	samples := sampleDurations(b, m, truth, 2000, 4, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inc := NewIncremental(m, EM{Config: EMConfig{KernelHalfWidth: 4}}, 1e-3, 2)
		for j := 0; j < len(samples); j += 250 {
			if _, err := inc.Observe(samples[j : j+250]); err != nil {
				b.Fatal(err)
			}
		}
	}
}
