// Package tomography implements Code Tomography — the paper's central
// contribution. A procedure's execution under nondeterministic inputs is a
// discrete-time Markov chain over its basic blocks (package markov) whose
// branch probabilities are unknown. The only observations are end-to-end
// durations measured at each procedure's start and end points, quantized by
// the mote's coarse hardware timer. Because every block and edge has a
// deterministic cycle cost known to the compiler, the duration distribution
// is a finite mixture over execution paths, and the branch probabilities
// can be estimated by inverting that mixture.
//
// Three estimators are provided:
//
//   - EM over the path mixture (Estimate/EstimateEM) — the primary method.
//   - Moment matching on the analytic mean/variance (EstimateMoments).
//   - Histogram nonnegative least squares (EstimateHistogram).
package tomography

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"codetomo/internal/analysis"
	"codetomo/internal/cfg"
	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
)

// ErrNoBranches means the procedure has nothing to estimate.
var ErrNoBranches = errors.New("tomography: procedure has no branches")

// Unknown is one branch block whose outgoing distribution is estimated.
type Unknown struct {
	Block ir.BlockID
	// Edges are the block's outgoing edges in successor order.
	Edges [][2]ir.BlockID
}

// ModelOptions configures optional model features.
type ModelOptions struct {
	// StaticResolve runs the compiler's value-range analysis over the
	// procedure and pins every branch it proves one-way: the resolved
	// blocks are removed from the unknowns (the estimator has fewer free
	// parameters and the duration mixture fewer spurious components) and
	// their edge probabilities fixed at 1/0 in every starting point. It
	// also computes the static feasible envelope for EnvelopeCheck.
	StaticResolve bool
}

// Model binds a procedure's CFG to its compiled timing metadata: the path
// set, each path's deterministic duration, and the set of unknowns.
type Model struct {
	Proc  *cfg.Proc
	Meta  *compile.Meta
	PM    *compile.ProcMeta
	Costs *markov.Costs

	Paths     []*markov.Path
	PathTimes []float64
	Truncated bool

	Unknowns []Unknown

	// Pinned holds edge probabilities fixed by the static value-range
	// analysis (1 for the proven arm, 0 for the dead one). The source
	// blocks do not appear in Unknowns; estimators must not touch these.
	Pinned markov.EdgeProbs

	// Envelope, when non-nil and Bounded, is the static feasible range of
	// one measured interval (compile.ProcStaticEnvelope); EnvelopeCheck
	// tests a fitted estimate against it.
	Envelope *compile.StaticEnvelope

	// Dense kernel inputs (markov.CompiledPaths + sorted path times),
	// built lazily on first estimation and shared by concurrent streams.
	compileOnce sync.Once
	comp        *compiledModel
}

// NewModel builds the estimation model for one procedure of a compiled
// program. pred must be the branch predictor of the mote the measurements
// came from (it determines per-edge penalty cycles).
func NewModel(out *compile.Output, procName string, pred compile.Predictor, enum markov.EnumerateOptions) (*Model, error) {
	return NewModelOpts(out, procName, pred, enum, ModelOptions{})
}

// NewModelOpts is NewModel with optional features enabled.
func NewModelOpts(out *compile.Output, procName string, pred compile.Predictor, enum markov.EnumerateOptions, mo ModelOptions) (*Model, error) {
	pm, ok := out.Meta.ProcByName[procName]
	if !ok {
		return nil, fmt.Errorf("tomography: unknown procedure %q", procName)
	}
	proc := out.CFG.Proc(procName)
	if proc == nil {
		return nil, fmt.Errorf("tomography: procedure %q missing from CFG", procName)
	}
	costs, err := BuildCosts(out.Meta, pm, proc, pred)
	if err != nil {
		return nil, err
	}
	m := &Model{Proc: proc, Meta: out.Meta, PM: pm, Costs: costs}
	m.Paths, m.Truncated = markov.Enumerate(proc, enum)
	if len(m.Paths) == 0 {
		return nil, fmt.Errorf("tomography: %q has no terminating path within bounds", procName)
	}
	m.PathTimes = make([]float64, len(m.Paths))
	for i, p := range m.Paths {
		m.PathTimes[i] = markov.PathTime(p, costs)
	}

	var resolved map[ir.BlockID]ir.BlockID
	if mo.StaticResolve {
		resolved = analysis.InferRanges(proc).ResolvedBranches()
		if len(resolved) > 0 {
			m.Pinned = make(markov.EdgeProbs, 2*len(resolved))
		}
		if env, err := out.ProcStaticEnvelope(procName); err == nil {
			m.Envelope = &env
		}
	}
	for _, bb := range proc.BranchBlocks() {
		if live, ok := resolved[bb]; ok {
			// Statically proven one-way: pin instead of estimating.
			for _, s := range proc.Block(bb).Succs() {
				p := 0.0
				if s == live {
					p = 1.0
				}
				m.Pinned[[2]ir.BlockID{bb, s}] = p
			}
			continue
		}
		u := Unknown{Block: bb}
		for _, s := range proc.Block(bb).Succs() {
			u.Edges = append(u.Edges, [2]ir.BlockID{bb, s})
		}
		m.Unknowns = append(m.Unknowns, u)
	}
	return m, nil
}

// BuildCosts converts compile metadata into the Markov chain's cost
// parameters under a given predictor.
func BuildCosts(meta *compile.Meta, pm *compile.ProcMeta, proc *cfg.Proc, pred compile.Predictor) (*markov.Costs, error) {
	costs := &markov.Costs{
		Block:         make([]float64, len(proc.Blocks)),
		Edge:          make(map[[2]ir.BlockID]float64),
		EntryOverhead: float64(pm.EntryOverhead),
	}
	for id, c := range pm.BlockCycles {
		costs.Block[int(id)] = float64(c)
	}
	for _, e := range proc.Edges() {
		extra, err := meta.EdgeExtraCycles(pm, compile.EdgeKey{From: e.From, To: e.To}, pred)
		if err != nil {
			return nil, err
		}
		costs.Edge[[2]ir.BlockID{e.From, e.To}] = float64(extra)
	}
	return costs, nil
}

// InitialProbs returns the estimators' starting point: uniform branches,
// overlaid with the statically pinned edges (which every estimator leaves
// untouched because their blocks are not unknowns).
func (m *Model) InitialProbs() markov.EdgeProbs {
	probs := markov.Uniform(m.Proc)
	for e, p := range m.Pinned {
		probs[e] = p
	}
	return probs
}

// EnvelopeCheck reports whether the expected interval duration under probs
// lies inside the static feasible envelope, within slack cycles. Estimates
// that fail it are fitting noise (or a mixture component the model cannot
// realize) and should not drive placement. Models without a bounded
// envelope always pass.
func (m *Model) EnvelopeCheck(probs markov.EdgeProbs, slack float64) bool {
	if m.Envelope == nil || !m.Envelope.Bounded {
		return true
	}
	num, den := 0.0, 0.0
	for j, p := range m.Paths {
		pr := p.Prob(probs)
		num += pr * m.PathTimes[j]
		den += pr
	}
	if den <= 0 {
		return true
	}
	mean := num / den
	return mean >= float64(m.Envelope.MinCycles)-slack &&
		mean <= float64(m.Envelope.MaxCycles)+slack
}

// probsFromEdgeWeights converts expected edge-traversal weights into a
// probability assignment: each branch block's outgoing weights are
// normalized (with additive smoothing alpha so no edge is pinned to zero);
// unconditional edges stay 1.
func (m *Model) probsFromEdgeWeights(w map[[2]ir.BlockID]float64, alpha float64) markov.EdgeProbs {
	probs := m.InitialProbs()
	for _, u := range m.Unknowns {
		total := 0.0
		for _, e := range u.Edges {
			total += w[e] + alpha
		}
		if total <= 0 {
			continue // keep uniform
		}
		for _, e := range u.Edges {
			probs[e] = (w[e] + alpha) / total
		}
	}
	return probs
}

// Coverage returns the fraction of samples lying within halfWidth of some
// enumerated path's duration. Low coverage means the path model does not
// explain the observations (usually a loop whose realized iteration counts
// exceed the unrolling bound) and the estimate should not be trusted.
func (m *Model) Coverage(samples []float64, halfWidth float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	// Binary search over the sorted path times; the predicate is exactly
	// the linear scan's |s − τ| <= halfWidth.
	times := m.compiled().times
	hit := 0
	for _, s := range samples {
		if times.Within(s, halfWidth) {
			hit++
		}
	}
	return float64(hit) / float64(len(samples))
}

// BranchAmbiguity returns, for each branch block, the (uniform-prior)
// probability mass of paths whose usage of that block's outgoing edges
// cannot be determined from the observed duration: some path within
// window cycles uses the block's arms differently. Paths further apart
// than a few cycles remain statistically separable even under a coarse
// timer (their tick distributions differ), so the window should be small —
// the pipeline uses ~half the tick. An ambiguity near 1 means
// the duration mixture carries no information about that branch at the
// given timer resolution — EM will converge confidently to an arbitrary
// answer for it. Unlike Coverage this needs no samples; it is a structural
// property of the program and the clock.
func (m *Model) BranchAmbiguity(window float64) map[ir.BlockID]float64 {
	out := make(map[ir.BlockID]float64, len(m.Unknowns))
	n := len(m.Paths)
	if n == 0 {
		return out
	}
	uniform := m.InitialProbs()
	prior := make([]float64, n)
	total := 0.0
	for j, p := range m.Paths {
		prior[j] = p.Prob(uniform)
		total += prior[j]
	}
	if total == 0 {
		return out
	}
	if window <= 0 {
		window = 1
	}
	bucketOf := func(t float64) int64 { return int64(t / window) }

	for _, u := range m.Unknowns {
		// Per-path signature: this block's out-edge traversal counts.
		sig := make([]uint64, n)
		for j, p := range m.Paths {
			s := uint64(0)
			for _, e := range u.Edges {
				s = s*1000003 + uint64(p.EdgeCounts[e])
			}
			sig[j] = s
		}
		type bs struct {
			sig      uint64
			multiple bool
		}
		buckets := make(map[int64]*bs)
		for j := range m.Paths {
			b := bucketOf(m.PathTimes[j])
			cur := buckets[b]
			if cur == nil {
				buckets[b] = &bs{sig: sig[j]}
			} else if !cur.multiple && cur.sig != sig[j] {
				cur.multiple = true
			}
		}
		mass := 0.0
		for j := range m.Paths {
			b := bucketOf(m.PathTimes[j])
			conf := false
			for _, nb := range [3]int64{b - 1, b, b + 1} {
				if cur := buckets[nb]; cur != nil && (cur.multiple || cur.sig != sig[j]) {
					conf = true
					break
				}
			}
			if conf {
				mass += prior[j]
			}
		}
		out[u.Block] = mass / total
	}
	return out
}

// BranchEdgeList returns the branch edges in a stable order — the vector
// layout used when comparing estimates against ground truth.
func (m *Model) BranchEdgeList() [][2]ir.BlockID {
	var out [][2]ir.BlockID
	for _, u := range m.Unknowns {
		out = append(out, u.Edges...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ProbVector projects an EdgeProbs assignment onto the BranchEdgeList
// layout.
func (m *Model) ProbVector(probs markov.EdgeProbs) []float64 {
	edges := m.BranchEdgeList()
	out := make([]float64, len(edges))
	for i, e := range edges {
		out[i] = probs[e]
	}
	return out
}
