package tomography

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// Regression: dedup used to run-length-encode via a float-keyed map, where
// NaN keys never compare equal — every NaN sample became its own bucket
// and ±Inf flowed straight into the kernel windows. Non-finite durations
// are now rejected at every estimation entry point before dedup runs.
func TestEstimatorsRejectNonFinite(t *testing.T) {
	m := syntheticModel(t)
	bad := [][]float64{
		{math.NaN()},
		{215, math.NaN(), 230},
		{math.Inf(1)},
		{215, math.Inf(-1)},
	}
	for _, samples := range bad {
		if _, _, err := EstimateEM(m, samples, EMConfig{}); err == nil {
			t.Fatalf("EstimateEM accepted %v", samples)
		} else if !strings.Contains(err.Error(), "not finite") {
			t.Fatalf("EstimateEM(%v): unhelpful error %q", samples, err)
		}
		if _, _, err := EstimateRobust(m, samples, RobustConfig{}); err == nil {
			t.Fatalf("EstimateRobust accepted %v", samples)
		}
	}
	// The error names the offending index so fleet operators can find the
	// corrupt upload.
	_, _, err := EstimateEM(m, []float64{215, math.NaN(), 230}, EMConfig{})
	if err == nil || !strings.Contains(err.Error(), "sample 1") {
		t.Fatalf("error does not locate the bad sample: %v", err)
	}
}

func TestNoSamplesTyped(t *testing.T) {
	m := syntheticModel(t)
	if _, _, err := EstimateEM(m, nil, EMConfig{}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("EstimateEM(nil) err = %v, want ErrNoSamples", err)
	}
	if _, _, err := EstimateRobust(m, nil, RobustConfig{}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("EstimateRobust(nil) err = %v, want ErrNoSamples", err)
	}
}
