package tomography

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
	"codetomo/internal/stats"
)

// randomModel builds a chain of `diamonds` two-way branches with RNG-drawn
// block and edge costs — the randomized corpus for pinning the dense kernel
// against the reference. Arm costs are drawn wide enough that some models
// get well-separated paths (singleton supports) and others get colliding
// ones (genuine EM mixing), covering both regimes.
func randomModel(t testing.TB, rng *stats.RNG, diamonds int) *Model {
	t.Helper()
	var blocks []*cfg.Block
	id := func(i int) ir.BlockID { return ir.BlockID(i) }
	for d := 0; d < diamonds; d++ {
		base := 3 * d
		blocks = append(blocks,
			&cfg.Block{ID: id(base), Term: ir.Br{Cond: 0, True: id(base + 1), False: id(base + 2)}},
			&cfg.Block{ID: id(base + 1), Term: ir.Jmp{Target: id(base + 3)}},
			&cfg.Block{ID: id(base + 2), Term: ir.Jmp{Target: id(base + 3)}},
		)
	}
	blocks = append(blocks, &cfg.Block{ID: id(3 * diamonds), Term: ir.Ret{Val: -1}})
	p := &cfg.Proc{Name: "rand", Entry: 0, Blocks: blocks}

	costs := &markov.Costs{
		Block:         make([]float64, len(blocks)),
		Edge:          make(map[[2]ir.BlockID]float64),
		EntryOverhead: float64(rng.Intn(20)),
	}
	for i := range costs.Block {
		costs.Block[i] = float64(rng.Intn(120))
	}
	for _, e := range p.Edges() {
		costs.Edge[[2]ir.BlockID{e.From, e.To}] = float64(rng.Intn(8))
	}

	m := &Model{Proc: p, Costs: costs}
	m.Paths, m.Truncated = markov.Enumerate(p, markov.EnumerateOptions{MaxVisits: 4, MaxPaths: 1 << 12})
	if len(m.Paths) == 0 {
		t.Fatal("random model has no paths")
	}
	m.PathTimes = make([]float64, len(m.Paths))
	for i, path := range m.Paths {
		m.PathTimes[i] = markov.PathTime(path, costs)
	}
	for _, bb := range p.BranchBlocks() {
		u := Unknown{Block: bb}
		for _, s := range p.Block(bb).Succs() {
			u.Edges = append(u.Edges, [2]ir.BlockID{bb, s})
		}
		m.Unknowns = append(m.Unknowns, u)
	}
	return m
}

// randomTruth draws a branch-probability assignment bounded away from the
// degenerate 0/1 corners so sampled paths exercise every arm.
func randomTruth(m *Model, rng *stats.RNG) markov.EdgeProbs {
	ep := markov.Uniform(m.Proc)
	for _, u := range m.Unknowns {
		p := 0.1 + 0.8*rng.Float64()
		ep[u.Edges[0]] = p
		ep[u.Edges[1]] = 1 - p
	}
	return ep
}

// TestDenseMatchesReferenceProperty is the ISSUE's pinning property: over
// 1000 random models, the dense kernel must agree with the retained
// map-based reference — same iteration counts, per-edge probabilities
// within 1e-9 (they are bit-identical by construction; the tolerance is
// slack for exotic FMA contraction only), same convergence verdict and
// log-likelihood — and the dense kernel must be deterministic across
// GOMAXPROCS settings.
func TestDenseMatchesReferenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-model corpus")
	}
	kernelWidths := []float64{0.5, 2, 8, 60}
	for trial := 0; trial < 1000; trial++ {
		rng := stats.NewRNG(int64(trial) + 1)
		m := randomModel(t, rng, 1+rng.Intn(4))
		truth := randomTruth(m, rng)
		tickDiv := []int{1, 4, 8}[rng.Intn(3)]
		samples := sampleDurations(t, m, truth, 40+rng.Intn(120), tickDiv, int64(trial)*31+7)
		cfg := EMConfig{
			KernelHalfWidth: kernelWidths[rng.Intn(len(kernelWidths))],
			MaxIter:         60,
		}

		dense, dst, derr := EstimateEM(m, samples, cfg)
		ref, rst, rerr := EstimateEMReference(m, samples, cfg)
		if derr != nil || rerr != nil {
			t.Fatalf("trial %d: dense err=%v reference err=%v", trial, derr, rerr)
		}
		if dst.Iterations != rst.Iterations || dst.Converged != rst.Converged {
			t.Fatalf("trial %d: dense ran %d iters (conv=%v), reference %d (conv=%v)",
				trial, dst.Iterations, dst.Converged, rst.Iterations, rst.Converged)
		}
		if dst.LogLikelihood != rst.LogLikelihood || dst.Unmatched != rst.Unmatched {
			t.Fatalf("trial %d: stats diverge: dense %+v reference %+v", trial, dst, rst)
		}
		if len(dense) != len(ref) {
			t.Fatalf("trial %d: dense has %d edges, reference %d", trial, len(dense), len(ref))
		}
		for e, rp := range ref {
			dp, ok := dense[e]
			if !ok {
				t.Fatalf("trial %d: edge %v missing from dense estimate", trial, e)
			}
			if math.Abs(dp-rp) > 1e-9 {
				t.Fatalf("trial %d: edge %v: dense %v vs reference %v", trial, e, dp, rp)
			}
		}

		// Determinism across GOMAXPROCS: the kernel is sequential, so the
		// scheduler must have no way to perturb it. Spot-check a slice of
		// the corpus (the switch itself is costly).
		if trial%97 == 0 {
			prev := runtime.GOMAXPROCS(1)
			again, ast, aerr := EstimateEM(m, samples, cfg)
			runtime.GOMAXPROCS(prev)
			if aerr != nil {
				t.Fatalf("trial %d: GOMAXPROCS=1 rerun: %v", trial, aerr)
			}
			if !reflect.DeepEqual(dense, again) || ast != dst {
				t.Fatalf("trial %d: estimate depends on GOMAXPROCS", trial)
			}
		}
	}
}
