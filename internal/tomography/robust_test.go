package tomography

import (
	"math"
	"reflect"
	"testing"
)

// contaminate appends n absurd durations — the signature of
// reboot-truncated invocations or corrupt-but-decodable ticks — to a clean
// sample set.
func contaminate(samples []float64, n int, at float64) []float64 {
	out := append([]float64(nil), samples...)
	for i := 0; i < n; i++ {
		out = append(out, at+float64(i))
	}
	return out
}

func TestRobustMatchesEMOnCleanSamples(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.3, 0.7)
	samples := sampleDurations(t, m, truth, 3000, 1, 7)
	cfg := RobustConfig{EM: EMConfig{KernelHalfWidth: 0.5}}
	probs, st, err := EstimateRobust(m, samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A handful of clean samples may exceed the model's loop-enumeration
	// bound and be (correctly) treated as unexplainable; anything more
	// means the trim window is wrong.
	if st.Trimmed > 5 {
		t.Fatalf("clean samples trimmed: %+v", st)
	}
	if !st.Confident {
		t.Fatalf("clean estimate not confident: %+v", st)
	}
	if mae := branchMAE(t, m, probs, truth); mae > 0.02 {
		t.Fatalf("robust MAE on clean samples = %v, want < 0.02", mae)
	}
}

// The headline property: contamination plain EM cannot shrug off is
// trimmed by the robust pass, which stays near the truth.
func TestRobustResistsContamination(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.3, 0.7)
	clean := sampleDurations(t, m, truth, 2000, 1, 7)
	// 15% contamination far past the longest path.
	dirty := contaminate(clean, 300, 50_000)

	plain, _, err := EstimateEM(m, dirty, EMConfig{KernelHalfWidth: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	robust, st, err := EstimateRobust(m, dirty, RobustConfig{EM: EMConfig{KernelHalfWidth: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Trimmed < 300 || st.Trimmed > 305 {
		t.Fatalf("Trimmed = %d, want the 300 injected outliers (+ at most a few beyond-enumeration cleans)", st.Trimmed)
	}
	if !st.Confident {
		t.Fatalf("15%% trim should stay under the 25%% confidence gate: %+v", st)
	}
	plainMAE := branchMAE(t, m, plain, truth)
	robustMAE := branchMAE(t, m, robust, truth)
	if robustMAE > 0.03 {
		t.Fatalf("robust MAE under contamination = %v, want < 0.03", robustMAE)
	}
	if plainMAE < 2*robustMAE {
		t.Fatalf("contamination did not separate the estimators: plain %v, robust %v", plainMAE, robustMAE)
	}
}

func TestRobustConfidenceGate(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.4, 0.6)
	clean := sampleDurations(t, m, truth, 500, 1, 13)
	// 50% contamination: past MaxTrimFraction, so the estimate must be
	// flagged rather than trusted.
	dirty := contaminate(clean, 500, 80_000)
	_, st, err := EstimateRobust(m, dirty, RobustConfig{EM: EMConfig{KernelHalfWidth: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Confident {
		t.Fatalf("50%% trim reported confident: %+v", st)
	}
	if st.Trimmed != 500 {
		t.Fatalf("Trimmed = %d, want 500", st.Trimmed)
	}
}

// When every sample is implausible the estimator returns the uniform prior
// unconfidently — a fault-ridden uplink is an operating condition, not a
// caller bug.
func TestRobustAllTrimmed(t *testing.T) {
	m := syntheticModel(t)
	samples := []float64{1e6, 2e6, 3e6}
	probs, st, err := EstimateRobust(m, samples, RobustConfig{EM: EMConfig{KernelHalfWidth: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Confident || st.Trimmed != 3 || st.Kept != 0 {
		t.Fatalf("all-trimmed stats: %+v", st)
	}
	if !reflect.DeepEqual(probs, m.InitialProbs()) {
		t.Fatal("all-trimmed estimate is not the uniform prior")
	}
}

func TestRobustNoSamples(t *testing.T) {
	m := syntheticModel(t)
	if _, _, err := EstimateRobust(m, nil, RobustConfig{}); err == nil {
		t.Fatal("robust estimator accepted empty sample set")
	}
}

func TestRobustDeterministic(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.35, 0.65)
	dirty := contaminate(sampleDurations(t, m, truth, 1000, 8, 19), 100, 40_000)
	cfg := RobustConfig{EM: EMConfig{KernelHalfWidth: 8}}
	first, st1, err := EstimateRobust(m, dirty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, st2, err := EstimateRobust(m, dirty, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st1 != st2 || !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs", i)
		}
	}
}

func TestWinsorize(t *testing.T) {
	in := []float64{100, 1, 2, 3, 4, 5, 6, 7, 8, -50}
	out, clamped := winsorize(in, 0.1)
	if clamped != 2 {
		t.Fatalf("clamped = %d, want 2", clamped)
	}
	// Order is preserved; the extremes are pulled to the 10%/90% quantiles.
	if out[0] != 8 || out[9] != 1 {
		t.Fatalf("winsorized = %v", out)
	}
	for i, v := range out[1:9] {
		if v != in[i+1] {
			t.Fatalf("interior value %d changed: %v", i+1, out)
		}
	}
	// Tiny or disabled inputs pass through untouched.
	if got, n := winsorize([]float64{1, 2}, 0.1); n != 0 || !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Fatalf("short input winsorized: %v, %d", got, n)
	}
}

func TestRobustEstimatorInterface(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.3, 0.6)
	samples := sampleDurations(t, m, truth, 1000, 8, 23)
	var est Estimator = Robust{Config: RobustConfig{EM: EMConfig{KernelHalfWidth: 8}}}
	if est.Name() != "robust-em" {
		t.Fatalf("Name = %q", est.Name())
	}
	probs, err := est.Estimate(m, samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range m.Unknowns {
		sum := 0.0
		for _, e := range u.Edges {
			sum += probs[e]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("branch %v probabilities sum to %v", u.Block, sum)
		}
	}
}
