package tomography

import (
	"sort"

	"codetomo/internal/markov"
)

// RobustConfig tunes the outlier-robust wrapper around EstimateEM. Plain
// EM soft-assigns every observation to its nearest enumerated path, so a
// handful of wildly implausible durations — reboot-truncated invocations
// that slipped past the epoch markers, or corrupted-but-decodable ticks on
// a CRC-less uplink — can drag whole branch probabilities with them. The
// robust variant trims what the path model cannot explain, winsorizes the
// tails of what remains, and reports how much it had to discard so callers
// can refuse to act on a gutted sample set.
type RobustConfig struct {
	// EM configures the inner estimator.
	EM EMConfig
	// OutlierWidth is the trim distance in cycles: samples farther than
	// this from every enumerated path duration are discarded before EM
	// runs (default 4× the EM kernel half-width).
	OutlierWidth float64
	// WinsorFraction clamps this fraction of the kept samples at each
	// tail to the corresponding quantile, in [0, 0.5) (default 0.005).
	// Trimming is the main defence; the winsor pass only bounds the
	// leverage of the extreme in-model tail, and must stay below the
	// probability of the rarest path worth estimating or it clamps real
	// samples into the wrong mode.
	WinsorFraction float64
	// MaxTrimFraction is the confidence gate: when more than this
	// fraction of the samples was trimmed, the estimate is flagged
	// unconfident (default 0.25).
	MaxTrimFraction float64
}

func (c RobustConfig) withDefaults() RobustConfig {
	c.EM = c.EM.withDefaults()
	if c.OutlierWidth <= 0 {
		c.OutlierWidth = 4 * c.EM.KernelHalfWidth
	}
	if c.WinsorFraction <= 0 || c.WinsorFraction >= 0.5 {
		c.WinsorFraction = 0.005
	}
	if c.MaxTrimFraction <= 0 {
		c.MaxTrimFraction = 0.25
	}
	return c
}

// RobustStats reports what the robust pass did to the sample set and how
// the inner EM went.
type RobustStats struct {
	// Trimmed counts samples discarded as model-implausible; Winsorized
	// counts kept samples clamped to a tail quantile; Kept is what EM ran
	// on.
	Trimmed, Winsorized, Kept int
	// EM is the inner estimator's report (zero when every sample was
	// trimmed and EM never ran).
	EM EMStats
	// Confident is the estimate's trust flag: the trim fraction stayed
	// under MaxTrimFraction, so the path model explains the bulk of what
	// the uplink delivered. Callers should fall back to baseline behaviour
	// when it is false. (The inner EM's own convergence bit is reported in
	// EM but deliberately not folded in here: stopping at the iteration
	// budget is a numerical detail, not evidence of contamination.)
	Confident bool
}

// EstimateRobust recovers branch probabilities like EstimateEM but
// degrades gracefully under contaminated samples: model-implausible
// observations are trimmed, the kept tails winsorized, and the result
// carries a confidence verdict instead of silently fitting garbage. When
// every sample is implausible it returns the uniform prior, unconfident —
// never an error, because a fault-ridden uplink is an operating condition,
// not a caller bug.
func EstimateRobust(m *Model, samples []float64, cfg RobustConfig) (markov.EdgeProbs, RobustStats, error) {
	cfg = cfg.withDefaults()
	var st RobustStats
	if err := validateSamples(samples); err != nil {
		return nil, st, err
	}
	if len(m.Unknowns) == 0 {
		st.Confident = true
		return m.InitialProbs(), st, nil
	}
	if len(samples) == 0 {
		return nil, st, ErrNoSamples
	}
	kept := trimOutliers(m, samples, cfg.OutlierWidth)
	st.Trimmed = len(samples) - len(kept)
	trimFrac := float64(st.Trimmed) / float64(len(samples))
	if len(kept) == 0 {
		// Every observation is implausible under the path model: estimate
		// nothing, return the prior, and say so.
		return m.InitialProbs(), st, nil
	}
	kept, st.Winsorized = winsorize(kept, cfg.WinsorFraction)
	st.Kept = len(kept)
	probs, emSt, err := EstimateEM(m, kept, cfg.EM)
	if err != nil {
		return nil, st, err
	}
	st.EM = emSt
	st.Confident = trimFrac <= cfg.MaxTrimFraction
	return probs, st, nil
}

// trimOutliers keeps the samples within width cycles of at least one
// enumerated path duration, preserving input order. Everything else is
// unexplainable by the model at any branch probability and would only
// distort the EM responsibilities. The plausibility check binary-searches
// the sorted path times (the predicate is exactly |s − τ| <= width).
func trimOutliers(m *Model, samples []float64, width float64) []float64 {
	times := m.compiled().times
	kept := make([]float64, 0, len(samples))
	for _, s := range samples {
		if times.Within(s, width) {
			kept = append(kept, s)
		}
	}
	return kept
}

// winsorize clamps the samples below the frac quantile up to it and above
// the (1-frac) quantile down to it, preserving input order, and reports
// how many values were clamped. This bounds the leverage of in-model but
// extreme durations without discarding them.
func winsorize(samples []float64, frac float64) ([]float64, int) {
	if len(samples) < 3 || frac <= 0 {
		return samples, 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	lo := sorted[int(frac*float64(len(sorted)))]
	hi := sorted[len(sorted)-1-int(frac*float64(len(sorted)))]
	out := make([]float64, len(samples))
	clamped := 0
	for i, s := range samples {
		switch {
		case s < lo:
			out[i] = lo
			clamped++
		case s > hi:
			out[i] = hi
			clamped++
		default:
			out[i] = s
		}
	}
	return out, clamped
}

// Robust is the Estimator adapter for EstimateRobust, usable anywhere the
// plain estimators are.
type Robust struct {
	Config RobustConfig
}

// Name implements Estimator.
func (Robust) Name() string { return "robust-em" }

// Estimate implements Estimator.
func (r Robust) Estimate(m *Model, samples []float64) (markov.EdgeProbs, error) {
	probs, _, err := EstimateRobust(m, samples, r.Config)
	return probs, err
}
