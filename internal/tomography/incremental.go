package tomography

import (
	"math"

	"codetomo/internal/markov"
)

// Incremental adapts an Estimator to streaming use: duration samples
// arrive in batches (radio uplinks from a deployed fleet) and the estimate
// is refreshed after each batch. Convergence is declared once the estimate
// stops moving for several consecutive batches, letting a base station
// stop spending radio bandwidth on a procedure whose probabilities have
// stabilized.
//
// Two properties keep the per-round cost flat as the stream grows: the
// accumulated observations are kept as a running sorted (value, count)
// histogram that each batch is merged into (never re-deduplicated from
// scratch), and every EM round warm-starts from the previous round's
// probabilities, so a round that merely confirms the estimate costs a
// couple of iterations instead of a full cold solve.
type Incremental struct {
	// Model is the path-enumeration model for one procedure.
	Model *Model
	// Est produces the estimate from the accumulated samples.
	Est Estimator
	// Tol is the convergence threshold on the largest per-edge probability
	// change between successive rounds (default 1e-3).
	Tol float64
	// Patience is how many consecutive rounds must stay under Tol before
	// the stream is declared converged (default 2).
	Patience int

	samples []float64 // raw accumulated stream (Samples, robust re-trims)
	obs     []float64 // running dedup histogram, ascending (EM fast path)
	counts  []int

	probs      markov.EdgeProbs
	rounds     int
	calm       int
	converged  bool
	iterations int
	trimmed    int
	confident  bool
}

// NewIncremental builds a streaming estimator for one procedure. tol <= 0
// and patience <= 0 select the defaults.
func NewIncremental(m *Model, est Estimator, tol float64, patience int) *Incremental {
	if tol <= 0 {
		tol = 1e-3
	}
	if patience <= 0 {
		patience = 2
	}
	// Estimators without a confidence notion are trusted as before; only
	// the robust estimator can revoke confidence.
	return &Incremental{Model: m, Est: est, Tol: tol, Patience: patience, confident: true}
}

// Observe folds one batch of duration samples into the stream and
// re-estimates over everything accumulated so far. Once the stream has
// converged further batches are absorbed without re-estimating, so callers
// may keep feeding data cheaply.
//
// Contract: samples must be finite (NaN/±Inf are rejected with an error
// and the batch is not absorbed), and calling Observe while nothing has
// been accumulated yet — an empty first batch — returns ErrNoSamples with
// no estimate; the stream remains usable and a later non-empty batch
// estimates normally. Callers draining unevenly-filled uplink rounds
// should treat ErrNoSamples as "nothing to do yet", not a failure.
func (inc *Incremental) Observe(batch []float64) (markov.EdgeProbs, error) {
	if err := validateSamples(batch); err != nil {
		return nil, err
	}
	inc.samples = append(inc.samples, batch...)
	if inc.converged {
		return inc.probs, nil
	}
	if len(inc.samples) == 0 {
		return nil, ErrNoSamples
	}
	inc.rounds++

	var (
		probs markov.EdgeProbs
		err   error
	)
	// Go through the stats-reporting entry points directly when the
	// estimator supports them, so per-round iteration counts, trims, and
	// confidence surface in fleet observability — and so EM rounds can
	// warm-start from the previous estimate and reuse the histogram.
	switch est := inc.Est.(type) {
	case EM:
		cfg := est.Config
		cfg.Init = inc.probs // nil on round one: uniform start
		inc.merge(batch)
		var st EMStats
		probs, st, err = estimateEMDense(inc.Model, inc.obs, inc.counts, cfg)
		inc.iterations += st.Iterations
	case Robust:
		// The robust trim depends on the full sample set (winsorization is
		// quantile-based), so it runs over the raw stream; its inner EM
		// still warm-starts.
		cfg := est.Config
		cfg.EM.Init = inc.probs
		var st RobustStats
		probs, st, err = EstimateRobust(inc.Model, inc.samples, cfg)
		inc.iterations += st.EM.Iterations
		inc.trimmed = st.Trimmed
		inc.confident = st.Confident
	default:
		probs, err = inc.Est.Estimate(inc.Model, inc.samples)
	}
	if err != nil {
		return nil, err
	}

	if inc.probs != nil {
		if MaxDelta(inc.probs, probs) < inc.Tol {
			inc.calm++
			if inc.calm >= inc.Patience {
				inc.converged = true
			}
		} else {
			inc.calm = 0
		}
	}
	inc.probs = probs
	return probs, nil
}

// merge folds one batch into the running (value, count) histogram: the
// batch is deduplicated on its own and merged into the sorted run, so the
// per-round cost is O(batch·log batch + distinct values) instead of
// re-deduplicating the whole accumulated stream.
func (inc *Incremental) merge(batch []float64) {
	if len(batch) == 0 {
		return
	}
	bv, bc := dedup(batch)
	ov, oc := inc.obs, inc.counts
	mv := make([]float64, 0, len(ov)+len(bv))
	mc := make([]int, 0, len(oc)+len(bc))
	i, j := 0, 0
	for i < len(ov) && j < len(bv) {
		switch {
		case ov[i] < bv[j]:
			mv, mc = append(mv, ov[i]), append(mc, oc[i])
			i++
		case ov[i] > bv[j]:
			mv, mc = append(mv, bv[j]), append(mc, bc[j])
			j++
		default:
			mv, mc = append(mv, ov[i]), append(mc, oc[i]+bc[j])
			i++
			j++
		}
	}
	mv = append(mv, ov[i:]...)
	mc = append(mc, oc[i:]...)
	mv = append(mv, bv[j:]...)
	mc = append(mc, bc[j:]...)
	inc.obs, inc.counts = mv, mc
}

// Probs returns the latest estimate (nil before the first Observe).
func (inc *Incremental) Probs() markov.EdgeProbs { return inc.probs }

// Converged reports whether the estimate has stopped moving.
func (inc *Incremental) Converged() bool { return inc.converged }

// Rounds returns how many re-estimations have run.
func (inc *Incremental) Rounds() int { return inc.rounds }

// Iterations returns the total EM iterations spent across all rounds
// (zero for non-EM estimators).
func (inc *Incremental) Iterations() int { return inc.iterations }

// SampleCount returns how many samples have been absorbed.
func (inc *Incremental) SampleCount() int { return len(inc.samples) }

// Trimmed returns how many absorbed samples the robust estimator
// discarded as outliers in its latest estimation round (always 0 for
// non-robust estimators).
func (inc *Incremental) Trimmed() int { return inc.trimmed }

// Confident reports whether the latest estimate should be acted on:
// always true for estimators without a confidence notion, and the robust
// estimator's verdict otherwise.
func (inc *Incremental) Confident() bool { return inc.confident }

// Samples exposes the accumulated sample stream (read-only; callers must
// not mutate it).
func (inc *Incremental) Samples() []float64 { return inc.samples }

// MaxDelta returns the largest absolute per-edge difference between two
// probability maps, treating missing edges as zero.
func MaxDelta(a, b markov.EdgeProbs) float64 {
	max := 0.0
	for e, pa := range a {
		if d := math.Abs(pa - b[e]); d > max {
			max = d
		}
	}
	for e, pb := range b {
		if _, ok := a[e]; !ok && math.Abs(pb) > max {
			max = math.Abs(pb)
		}
	}
	return max
}
