package tomography

import (
	"math"
	"testing"

	"codetomo/internal/cfg"
	"codetomo/internal/compile"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/profile"
	"codetomo/internal/stats"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

// syntheticModel builds a Model directly (no compiler): a diamond feeding a
// loop, with distinguishable block costs.
//
//	b0 -Br-> b1|b2 -> b3(head) -Br-> b4(body)|b5(ret); b4 -> b3
func syntheticModel(t *testing.T) *Model {
	t.Helper()
	p := &cfg.Proc{
		Name:  "synth",
		Entry: 0,
		Blocks: []*cfg.Block{
			{ID: 0, Term: ir.Br{Cond: 0, True: 1, False: 2}},
			{ID: 1, Term: ir.Jmp{Target: 3}},
			{ID: 2, Term: ir.Jmp{Target: 3}},
			{ID: 3, Term: ir.Br{Cond: 0, True: 4, False: 5}},
			{ID: 4, Term: ir.Jmp{Target: 3}},
			{ID: 5, Term: ir.Ret{Val: -1}},
		},
	}
	costs := &markov.Costs{
		Block:         []float64{20, 150, 30, 15, 55, 10},
		Edge:          make(map[[2]ir.BlockID]float64),
		EntryOverhead: 12,
	}
	for _, e := range p.Edges() {
		costs.Edge[[2]ir.BlockID{e.From, e.To}] = 0
	}
	costs.Edge[[2]ir.BlockID{3, 4}] = 3 // taken-branch penalty flavor

	m := &Model{Proc: p, Costs: costs}
	m.Paths, m.Truncated = markov.Enumerate(p, markov.EnumerateOptions{MaxVisits: 25, MaxPaths: 100000})
	m.PathTimes = make([]float64, len(m.Paths))
	for i, path := range m.Paths {
		m.PathTimes[i] = markov.PathTime(path, costs)
	}
	for _, bb := range p.BranchBlocks() {
		u := Unknown{Block: bb}
		for _, s := range p.Block(bb).Succs() {
			u.Edges = append(u.Edges, [2]ir.BlockID{bb, s})
		}
		m.Unknowns = append(m.Unknowns, u)
	}
	return m
}

func trueProbs(m *Model, p01, p34 float64) markov.EdgeProbs {
	ep := markov.Uniform(m.Proc)
	ep[[2]ir.BlockID{0, 1}] = p01
	ep[[2]ir.BlockID{0, 2}] = 1 - p01
	ep[[2]ir.BlockID{3, 4}] = p34
	ep[[2]ir.BlockID{3, 5}] = 1 - p34
	return ep
}

// sampleDurations draws n durations from the true chain, quantized to the
// tick grid like the mote's timer does.
func sampleDurations(t testing.TB, m *Model, truth markov.EdgeProbs, n int, tickDiv int, seed int64) []float64 {
	t.Helper()
	chain, err := markov.New(m.Proc, truth)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(seed)
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		path := chain.SamplePath(rng.Float64, 1_000_000)
		if path == nil {
			t.Fatal("non-absorbing sample")
		}
		d := markov.PathTime(path, m.Costs)
		if tickDiv > 1 {
			// Start phase is uniform over the tick; measured duration is
			// the tick difference scaled back to cycles.
			phase := float64(rng.Intn(tickDiv))
			d = (math.Floor((d+phase)/float64(tickDiv)) - math.Floor(phase/float64(tickDiv))) * float64(tickDiv)
		}
		out = append(out, d)
	}
	return out
}

func branchMAE(t *testing.T, m *Model, est, truth markov.EdgeProbs) float64 {
	t.Helper()
	mae, err := stats.MAE(m.ProbVector(est), m.ProbVector(truth))
	if err != nil {
		t.Fatal(err)
	}
	return mae
}

func TestEMSyntheticExact(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.3, 0.75)
	samples := sampleDurations(t, m, truth, 4000, 1, 7)
	est, st, err := EstimateEM(m, samples, EMConfig{KernelHalfWidth: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("EM did not converge: %+v", st)
	}
	if mae := branchMAE(t, m, est, truth); mae > 0.02 {
		t.Fatalf("EM MAE = %v, want < 0.02\nest=%v", mae, m.ProbVector(est))
	}
}

func TestEMSyntheticQuantized(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.55, 0.6)
	samples := sampleDurations(t, m, truth, 6000, 8, 21)
	est, _, err := EstimateEM(m, samples, EMConfig{KernelHalfWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if mae := branchMAE(t, m, est, truth); mae > 0.05 {
		t.Fatalf("quantized EM MAE = %v, want < 0.05", mae)
	}
}

func TestEMConvergesFromFewSamples(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.2, 0.5)
	samples := sampleDurations(t, m, truth, 50, 8, 3)
	est, _, err := EstimateEM(m, samples, EMConfig{KernelHalfWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Loose bound: with 50 samples the estimate is noisy but sane.
	if mae := branchMAE(t, m, est, truth); mae > 0.25 {
		t.Fatalf("small-sample EM MAE = %v, want < 0.25", mae)
	}
}

func TestEMErrorShrinksWithSamples(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.35, 0.65)
	var maes []float64
	for _, n := range []int{30, 300, 3000} {
		samples := sampleDurations(t, m, truth, n, 8, 11)
		est, _, err := EstimateEM(m, samples, EMConfig{KernelHalfWidth: 8})
		if err != nil {
			t.Fatal(err)
		}
		maes = append(maes, branchMAE(t, m, est, truth))
	}
	if !(maes[2] < maes[0]) {
		t.Fatalf("error did not shrink with samples: %v", maes)
	}
	if maes[2] > 0.03 {
		t.Fatalf("large-sample error = %v, want < 0.03", maes[2])
	}
}

func TestMomentsSynthetic(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.3, 0.7)
	samples := sampleDurations(t, m, truth, 8000, 1, 13)
	est, err := EstimateMoments(m, samples, MomentsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Two unknowns, two moments: identifiable here, but coordinate descent
	// is approximate — accept a looser band than EM.
	if mae := branchMAE(t, m, est, truth); mae > 0.12 {
		t.Fatalf("moments MAE = %v, want < 0.12\nest=%v", mae, m.ProbVector(est))
	}
}

func TestHistogramSynthetic(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.4, 0.55)
	samples := sampleDurations(t, m, truth, 8000, 8, 17)
	est, err := EstimateHistogram(m, samples, HistogramConfig{KernelHalfWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if mae := branchMAE(t, m, est, truth); mae > 0.08 {
		t.Fatalf("histogram MAE = %v, want < 0.08\nest=%v", mae, m.ProbVector(est))
	}
}

func TestEstimatorInterface(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.3, 0.6)
	samples := sampleDurations(t, m, truth, 2000, 8, 19)
	for _, est := range []Estimator{EM{}, Moments{}, Histogram{}} {
		probs, err := est.Estimate(m, samples)
		if err != nil {
			t.Fatalf("%s: %v", est.Name(), err)
		}
		if _, err := markov.New(m.Proc, probs); err != nil {
			t.Fatalf("%s returned invalid probabilities: %v", est.Name(), err)
		}
	}
}

func TestNoBranchesShortCircuit(t *testing.T) {
	p := &cfg.Proc{
		Name:  "line",
		Entry: 0,
		Blocks: []*cfg.Block{
			{ID: 0, Term: ir.Ret{Val: -1}},
		},
	}
	m := &Model{Proc: p, Costs: &markov.Costs{Block: []float64{1}, Edge: map[[2]ir.BlockID]float64{}}}
	probs, _, err := EstimateEM(m, []float64{5}, EMConfig{})
	if err != nil || len(probs) != 0 {
		t.Fatalf("no-branch estimate = %v, %v", probs, err)
	}
}

// TestEMDeterministic locks bit-for-bit reproducibility: the same samples
// must produce the identical estimate on every run (float accumulation must
// never follow map iteration order).
func TestEMDeterministic(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.37, 0.61)
	samples := sampleDurations(t, m, truth, 3000, 8, 41)
	first, _, err := EstimateEM(m, samples, EMConfig{KernelHalfWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, _, err := EstimateEM(m, samples, EMConfig{KernelHalfWidth: 8})
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range first {
			if again[k] != v {
				t.Fatalf("run %d: edge %v differs: %v vs %v", i, k, again[k], v)
			}
		}
	}
}

func TestEMNoSamples(t *testing.T) {
	m := syntheticModel(t)
	if _, _, err := EstimateEM(m, nil, EMConfig{}); err == nil {
		t.Fatal("EM accepted empty sample set")
	}
}

// The end-to-end test: compile a sensor program, run it on the mote under a
// nondeterministic workload, measure only procedure-boundary timestamps,
// estimate branch probabilities, and compare against the simulator's
// ground truth.
const handlerProgram = `
var thresholdHi int = 550;
var thresholdLo int = 200;

func handler(v int) int {
	var r int;
	r = 0;
	if (v > thresholdHi) {
		r = 2;
	} else {
		if (v > thresholdLo) {
			r = 1 + v % 97;
		}
	}
	while (v > 600) {
		v = v - 250;
		r = r + 1;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 1500; i = i + 1) {
		acc = acc + handler(sense());
	}
	debug(acc);
}`

func runHandler(t *testing.T, tickDiv int, seed int64) (*compile.Output, *mote.Machine) {
	t.Helper()
	out, err := compile.Build(handlerProgram, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		t.Fatal(err)
	}
	cfgM := mote.DefaultConfig()
	cfgM.TickDiv = tickDiv
	cfgM.Sensor = workload.NewGaussian(stats.NewRNG(seed), 400, 180)
	m := mote.New(out.Code, cfgM)
	if err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return out, m
}

func estimateHandler(t *testing.T, out *compile.Output, m *mote.Machine, tickDiv int) (*Model, markov.EdgeProbs) {
	t.Helper()
	ivs, err := trace.Extract(m.Trace())
	if err != nil {
		t.Fatal(err)
	}
	pm := out.Meta.ProcByName["handler"]
	ticks := trace.ExclusiveByProc(ivs)[pm.Index]
	if len(ticks) != 1500 {
		t.Fatalf("handler samples = %d, want 1500", len(ticks))
	}
	samples := trace.DurationsCycles(ticks, tickDiv)

	model, err := NewModel(out, "handler", mote.StaticNotTaken{}, markov.EnumerateOptions{MaxVisits: 8, MaxPaths: 20000})
	if err != nil {
		t.Fatal(err)
	}
	// handler is a leaf: quantization error is strictly below one tick, so
	// the kernel half width is the tick itself.
	est, st, err := EstimateEM(model, samples, EMConfig{KernelHalfWidth: float64(tickDiv)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations == 0 {
		t.Fatal("EM did not run")
	}
	return model, est
}

func TestEndToEndExactTimer(t *testing.T) {
	out, m := runHandler(t, 1, 23)
	model, est := estimateHandler(t, out, m, 1)
	truth := profile.OracleProbs(out.Meta.ProcByName["handler"], model.Proc, m.BranchStats())
	if mae := branchMAE(t, model, est, truth); mae > 0.03 {
		t.Fatalf("end-to-end MAE (tick=1) = %v, want < 0.03\nest=%v\ntruth=%v",
			mae, model.ProbVector(est), model.ProbVector(truth))
	}
}

func TestEndToEndQuantizedTimer(t *testing.T) {
	out, m := runHandler(t, 8, 29)
	model, est := estimateHandler(t, out, m, 8)
	truth := profile.OracleProbs(out.Meta.ProcByName["handler"], model.Proc, m.BranchStats())
	if mae := branchMAE(t, model, est, truth); mae > 0.08 {
		t.Fatalf("end-to-end MAE (tick=8) = %v, want < 0.08\nest=%v\ntruth=%v",
			mae, model.ProbVector(est), model.ProbVector(truth))
	}
}

func TestMeasuredDurationsMatchPathTimes(t *testing.T) {
	// With TickDiv=1 every measured exclusive duration must be exactly one
	// of the enumerated path times — the strongest possible check that the
	// timing model, trace extraction, and path enumeration agree.
	out, m := runHandler(t, 1, 31)
	ivs, err := trace.Extract(m.Trace())
	if err != nil {
		t.Fatal(err)
	}
	pm := out.Meta.ProcByName["handler"]
	model, err := NewModel(out, "handler", mote.StaticNotTaken{}, markov.EnumerateOptions{MaxVisits: 8, MaxPaths: 20000})
	if err != nil {
		t.Fatal(err)
	}
	times := make(map[float64]bool, len(model.PathTimes))
	for _, tau := range model.PathTimes {
		times[tau] = true
	}
	for _, iv := range ivs {
		if iv.ProcIndex != pm.Index {
			continue
		}
		if !times[float64(iv.ExclusiveTicks())] {
			t.Fatalf("measured duration %d not among %d path times", iv.ExclusiveTicks(), len(model.PathTimes))
		}
	}
}

// TestEndToEndHandlerWithCalls estimates a handler that calls a helper:
// the exclusive-time extraction must subtract the callee's (quantized)
// interval, and the call-site boundary accounting in the timing model must
// keep durations invertible. The child subtraction adds up to one extra
// tick of noise per call, so the kernel is widened accordingly.
func TestEndToEndHandlerWithCalls(t *testing.T) {
	src := `
func scale(v int) int {
	return v / 3 + 7;
}

func handler(v int) int {
	var r int;
	r = scale(v);
	if (v > 550) {
		r = r + scale(v - 200) * 2;
	}
	if (r > 120) {
		r = r - 120;
		r = r * 5 % 89;
		r = r + v / 6;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 1500; i = i + 1) {
		acc = acc + handler(sense());
	}
	debug(acc);
}`
	out, err := compile.Build(src, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		t.Fatal(err)
	}
	const tickDiv = 8
	cfgM := mote.DefaultConfig()
	cfgM.TickDiv = tickDiv
	cfgM.Sensor = workload.NewGaussian(stats.NewRNG(61), 450, 170)
	m := mote.New(out.Code, cfgM)
	if err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	ivs, err := trace.Extract(m.Trace())
	if err != nil {
		t.Fatal(err)
	}
	pm := out.Meta.ProcByName["handler"]
	samples := trace.DurationsCycles(trace.ExclusiveByProc(ivs)[pm.Index], tickDiv)

	model, err := NewModel(out, "handler", mote.StaticNotTaken{}, markov.EnumerateOptions{MaxVisits: 8, MaxPaths: 20000})
	if err != nil {
		t.Fatal(err)
	}
	// Up to two callee subtractions per invocation: widen the kernel.
	est, _, err := EstimateEM(model, samples, EMConfig{KernelHalfWidth: 3 * tickDiv})
	if err != nil {
		t.Fatal(err)
	}
	truth := profile.OracleProbs(pm, model.Proc, m.BranchStats())
	// Both branches' arms are wider than the kernel, which the structural
	// diagnostic must confirm — and then the estimates must be accurate.
	amb := model.BranchAmbiguity(2)
	for b, a := range amb {
		if a > 0.5 {
			t.Fatalf("branch %v unexpectedly ambiguous (%v); test program mis-sized", b, a)
		}
	}
	if mae := branchMAE(t, model, est, truth); mae > 0.1 {
		t.Fatalf("caller-handler MAE = %v, want < 0.1\nest=%v\ntruth=%v",
			mae, model.ProbVector(est), model.ProbVector(truth))
	}
	// Coverage must also hold with the widened kernel.
	if cov := model.Coverage(samples, 3*tickDiv); cov < 0.95 {
		t.Fatalf("coverage = %v with calls, want >= 0.95", cov)
	}
}
