package tomography

import (
	"testing"

	"codetomo/internal/cfg"
	"codetomo/internal/ir"
	"codetomo/internal/markov"
)

// twoArmModel builds a single-branch procedure whose arms differ by the
// given number of cycles.
func twoArmModel(t testing.TB, armDelta float64) *Model {
	t.Helper()
	p := &cfg.Proc{
		Name:  "arms",
		Entry: 0,
		Blocks: []*cfg.Block{
			{ID: 0, Term: ir.Br{Cond: 0, True: 1, False: 2}},
			{ID: 1, Term: ir.Jmp{Target: 3}},
			{ID: 2, Term: ir.Jmp{Target: 3}},
			{ID: 3, Term: ir.Ret{Val: -1}},
		},
	}
	costs := &markov.Costs{
		Block: []float64{10, 40 + armDelta, 40, 5},
		Edge:  make(map[[2]ir.BlockID]float64),
	}
	for _, e := range p.Edges() {
		costs.Edge[[2]ir.BlockID{e.From, e.To}] = 0
	}
	m := &Model{Proc: p, Costs: costs}
	m.Paths, _ = markov.Enumerate(p, markov.DefaultEnumerateOptions())
	m.PathTimes = make([]float64, len(m.Paths))
	for i, path := range m.Paths {
		m.PathTimes[i] = markov.PathTime(path, costs)
	}
	for _, bb := range p.BranchBlocks() {
		u := Unknown{Block: bb}
		for _, s := range p.Block(bb).Succs() {
			u.Edges = append(u.Edges, [2]ir.BlockID{bb, s})
		}
		m.Unknowns = append(m.Unknowns, u)
	}
	return m
}

func TestBranchAmbiguityDetectsCollision(t *testing.T) {
	// Arms 0 cycles apart: durations carry no information about the
	// branch; ambiguity must be 1.
	collide := twoArmModel(t, 0)
	amb := collide.BranchAmbiguity(2)
	if amb[0] != 1 {
		t.Fatalf("colliding arms ambiguity = %v, want 1", amb[0])
	}
	// Arms 40 cycles apart: fully separable.
	apart := twoArmModel(t, 40)
	amb = apart.BranchAmbiguity(2)
	if amb[0] != 0 {
		t.Fatalf("separated arms ambiguity = %v, want 0", amb[0])
	}
	// The window matters: 40-cycle separation is ambiguous to a 50-cycle
	// window.
	amb = apart.BranchAmbiguity(50)
	if amb[0] != 1 {
		t.Fatalf("wide-window ambiguity = %v, want 1", amb[0])
	}
}

func TestBranchAmbiguityEMConsistency(t *testing.T) {
	// On a truly colliding branch, EM must stay at (or return to) the
	// uninformative prior — the diagnostic and the estimator must agree
	// that there is nothing to learn.
	m := twoArmModel(t, 0)
	truth := markov.Uniform(m.Proc)
	truth[[2]ir.BlockID{0, 1}] = 0.9
	truth[[2]ir.BlockID{0, 2}] = 0.1
	samples := sampleDurations(t, m, truth, 2000, 1, 5)
	est, _, err := EstimateEM(m, samples, EMConfig{KernelHalfWidth: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got := est[[2]ir.BlockID{0, 1}]
	if got < 0.45 || got > 0.55 {
		t.Fatalf("EM on unidentifiable branch = %v, want ~0.5 (the prior)", got)
	}
}

func TestBootstrapSpreadSmallForIdentifiable(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.3, 0.7)
	samples := sampleDurations(t, m, truth, 3000, 8, 9)
	spread, err := BootstrapSpread(m, samples, EM{Config: EMConfig{KernelHalfWidth: 8}}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if spread > 0.05 {
		t.Fatalf("spread = %v on an identifiable model, want small", spread)
	}
}

func TestBootstrapSpreadGrowsWithFewSamples(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.3, 0.7)
	big := sampleDurations(t, m, truth, 3000, 8, 13)
	small := sampleDurations(t, m, truth, 25, 8, 13)
	est := EM{Config: EMConfig{KernelHalfWidth: 8}}
	sb, err := BootstrapSpread(m, big, est, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := BootstrapSpread(m, small, est, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ss <= sb {
		t.Fatalf("spread with 25 samples (%v) not above spread with 3000 (%v)", ss, sb)
	}
}

func TestBootstrapSpreadDeterministic(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.4, 0.6)
	samples := sampleDurations(t, m, truth, 500, 8, 17)
	est := EM{Config: EMConfig{KernelHalfWidth: 8}}
	a, err := BootstrapSpread(m, samples, est, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapSpread(m, samples, est, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("bootstrap not deterministic per seed: %v vs %v", a, b)
	}
}
