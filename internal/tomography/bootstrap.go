package tomography

import (
	"fmt"
	"math"

	"codetomo/internal/ir"
	"codetomo/internal/markov"
	"codetomo/internal/stats"
)

// BootstrapSpread quantifies how stable an estimator's output is on the
// given sample set: it re-estimates on B bootstrap resamples and returns
// the traversal-weighted mean of the per-edge standard deviations. A path
// model that is formally covered but practically unidentifiable (several
// branch assignments explaining the same duration mixture) shows up as a
// large spread — the pipeline's second trust signal after Coverage.
func BootstrapSpread(m *Model, samples []float64, est Estimator, b int, seed int64) (float64, error) {
	if len(m.Unknowns) == 0 {
		return 0, nil
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("tomography: no samples")
	}
	if b <= 1 {
		b = 15
	}
	rng := stats.NewRNG(seed)
	edges := m.BranchEdgeList()
	sums := make([]stats.Moments, len(edges))

	resample := make([]float64, len(samples))
	for rep := 0; rep < b; rep++ {
		for i := range resample {
			resample[i] = samples[rng.Intn(len(samples))]
		}
		probs, err := est.Estimate(m, resample)
		if err != nil {
			return 0, err
		}
		for i, e := range edges {
			sums[i].Push(probs[e])
		}
	}

	// Weight each edge's spread by its expected traversal count under the
	// mean estimate: instability on hot edges is what corrupts layouts;
	// noise on a once-per-run error path is harmless.
	mean := m.InitialProbs()
	for i, e := range edges {
		mean[e] = sums[i].Mean()
	}
	normalizeBranches(m, mean)
	weights := map[[2]ir.BlockID]float64{}
	if chain, err := markov.New(m.Proc, mean); err == nil {
		if tr, err := chain.ExpectedEdgeTraversals(); err == nil {
			weights = tr
		}
	}

	num, den := 0.0, 0.0
	for i, e := range edges {
		w := weights[e]
		if w <= 0 {
			w = 1e-6
		}
		num += w * sums[i].StdDev()
		den += w
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// normalizeBranches rescales each branch block's outgoing probabilities to
// sum to 1 (bootstrap means need not).
func normalizeBranches(m *Model, probs markov.EdgeProbs) {
	for _, u := range m.Unknowns {
		total := 0.0
		for _, e := range u.Edges {
			total += math.Max(probs[e], 0)
		}
		if total <= 0 {
			for _, e := range u.Edges {
				probs[e] = 1 / float64(len(u.Edges))
			}
			continue
		}
		for _, e := range u.Edges {
			probs[e] = math.Max(probs[e], 0) / total
		}
	}
}
