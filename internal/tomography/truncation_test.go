package tomography

import (
	"math"
	"testing"

	"codetomo/internal/ir"
	"codetomo/internal/markov"
)

// tiltedProbs applies the survival bias analytically: given the true
// probabilities and a hazard λ, it builds the completed-sample estimate
// q_i ∝ p_i·e^{−λT_i} (as edge probabilities) and the implied completion
// rate f = Σ p_i·e^{−λT_i}.
func tiltedProbs(m *Model, truth markov.EdgeProbs, lambda float64) (markov.EdgeProbs, float64) {
	w := make(map[[2]ir.BlockID]float64)
	f := 0.0
	for i, p := range m.Paths {
		pi := p.Prob(truth)
		surv := pi * math.Exp(-lambda*m.PathTimes[i])
		f += surv
		for _, a := range p.Arcs {
			w[a.Edge] += surv * float64(a.Count)
		}
	}
	return m.probsFromEdgeWeights(w, 0), f
}

// TestTruncationHazardRecovered: with a bias constructed from a known λ
// and lost/completed counts consistent with the implied completion rate,
// the bisection recovers λ.
func TestTruncationHazardRecovered(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.6, 0.4)
	for _, lambda := range []float64{1e-4, 1e-3, 5e-3} {
		q, f := tiltedProbs(m, truth, lambda)
		const total = 1_000_000
		completed := int(f * total)
		lost := total - completed
		got := m.TruncationHazard(q, lost, completed)
		if rel := math.Abs(got-lambda) / lambda; rel > 0.02 {
			t.Errorf("λ = %v: recovered %v (rel err %.3f)", lambda, got, rel)
		}
	}
}

// TestDebiasTruncationRecoversTruth: the debiased edge probabilities match
// the true ones that generated the biased estimate. The long-path arms
// (the loop back-edge 3→4, the expensive diamond arm 0→1) are exactly the
// ones survival bias suppresses, so this is the paper-level property: lost
// partials carry real information about where time is actually spent.
func TestDebiasTruncationRecoversTruth(t *testing.T) {
	m := syntheticModel(t)
	truth := trueProbs(m, 0.6, 0.4)
	const lambda = 2e-3
	q, f := tiltedProbs(m, truth, lambda)

	// The bias must be material for the test to mean anything.
	if math.Abs(q[[2]ir.BlockID{3, 4}]-truth[[2]ir.BlockID{3, 4}]) < 0.02 {
		t.Fatalf("constructed bias too small: q(3→4) = %v", q[[2]ir.BlockID{3, 4}])
	}

	const total = 1_000_000
	completed := int(f * total)
	deb := m.DebiasTruncation(q, total-completed, completed)
	for _, e := range [][2]ir.BlockID{{0, 1}, {0, 2}, {3, 4}, {3, 5}} {
		if diff := math.Abs(deb[e] - truth[e]); diff > 0.01 {
			t.Errorf("edge %v: debiased %v, truth %v", e, deb[e], truth[e])
		}
	}
}

// TestDebiasTruncationNoLoss: with nothing lost (or nothing completed)
// the estimate passes through untouched.
func TestDebiasTruncationNoLoss(t *testing.T) {
	m := syntheticModel(t)
	q := trueProbs(m, 0.3, 0.7)
	if got := m.DebiasTruncation(q, 0, 500); !markovEqual(got, q) {
		t.Error("lost=0 changed the estimate")
	}
	if got := m.DebiasTruncation(q, 12, 0); !markovEqual(got, q) {
		t.Error("completed=0 changed the estimate")
	}
	if got := m.TruncationHazard(q, 0, 500); got != 0 {
		t.Errorf("λ = %v with no loss", got)
	}
}

func markovEqual(a, b markov.EdgeProbs) bool {
	if len(a) != len(b) {
		return false
	}
	for e, p := range a {
		if b[e] != p {
			return false
		}
	}
	return true
}

// TestTruncationHazardMonotone: more loss at the same estimate implies a
// higher hazard.
func TestTruncationHazardMonotone(t *testing.T) {
	m := syntheticModel(t)
	q := trueProbs(m, 0.5, 0.5)
	prev := -1.0
	for _, lost := range []int{10, 100, 400, 900} {
		l := m.TruncationHazard(q, lost, 1000)
		if l <= prev {
			t.Fatalf("hazard not monotone in loss: %v after %v", l, prev)
		}
		prev = l
	}
}
