package tomography

import (
	"fmt"
	"math"
	"sort"

	"codetomo/internal/ir"
	"codetomo/internal/markov"
)

// EMConfig tunes the expectation-maximization estimator.
type EMConfig struct {
	// MaxIter bounds EM iterations (default 200).
	MaxIter int
	// Tol stops iteration when no probability moves more than this
	// (default 1e-6).
	Tol float64
	// KernelHalfWidth is the observation kernel's half width in cycles,
	// covering timer quantization and callee-subtraction noise. Values
	// <= 0 default to the mote's TickDiv (pass it explicitly when known).
	KernelHalfWidth float64
	// Alpha is the additive smoothing applied in the M-step so no branch
	// probability collapses to exactly zero (default 0.5 pseudo-counts).
	Alpha float64
}

// withDefaults fills unset fields.
func (c EMConfig) withDefaults() EMConfig {
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.KernelHalfWidth <= 0 {
		c.KernelHalfWidth = 8
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	return c
}

// EMStats reports how the estimation went.
type EMStats struct {
	Iterations int
	Converged  bool
	// LogLikelihood is the final (smoothed-kernel) data log-likelihood.
	LogLikelihood float64
	// Unmatched counts observations that fell outside every path's kernel
	// and were soft-assigned to the nearest path.
	Unmatched int
}

// EstimateEM recovers branch probabilities from end-to-end duration samples
// (in cycles) by EM over the path mixture:
//
//	E-step: γ(i,j) ∝ π_j(θ)·K(t_i − τ_j)
//	M-step: p(e) ∝ Σ_{i,j} γ(i,j)·m_j(e)   (normalized per branch block)
//
// where π_j is the path prior under the current probabilities, τ_j the
// path's deterministic duration, m_j(e) its traversal count of edge e, and
// K a box kernel absorbing timer quantization.
func EstimateEM(m *Model, samples []float64, cfg EMConfig) (markov.EdgeProbs, EMStats, error) {
	cfg = cfg.withDefaults()
	var st EMStats
	if len(m.Unknowns) == 0 {
		return m.InitialProbs(), st, nil
	}
	if len(samples) == 0 {
		return nil, st, fmt.Errorf("tomography: no samples")
	}

	// Deduplicate observations into (value, count) — durations are
	// quantized so collapsing repeats makes EM cost independent of the
	// sample count.
	obs, counts := dedup(samples)

	probs := m.InitialProbs()
	nPaths := len(m.Paths)

	// Precompute kernel support per observation.
	type support struct {
		paths []int
		vals  []float64 // kernel value (box: 1)
	}
	supports := make([]support, len(obs))
	for i, t := range obs {
		var s support
		for j, tau := range m.PathTimes {
			if math.Abs(t-tau) <= cfg.KernelHalfWidth {
				s.paths = append(s.paths, j)
				s.vals = append(s.vals, 1)
			}
		}
		if len(s.paths) == 0 {
			// No path within the kernel: soft-assign to the nearest path
			// so the observation still informs the estimate.
			best, bd := -1, math.Inf(1)
			for j, tau := range m.PathTimes {
				if d := math.Abs(t - tau); d < bd {
					best, bd = j, d
				}
			}
			s.paths = []int{best}
			s.vals = []float64{1}
			st.Unmatched += counts[i]
		}
		supports[i] = s
	}

	prior := make([]float64, nPaths)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		st.Iterations = iter + 1
		// Path priors under current θ.
		for j, p := range m.Paths {
			prior[j] = p.Prob(probs)
		}

		// E-step + M-step accumulation.
		edgeW := make(map[[2]ir.BlockID]float64) // edge → expected traversals
		ll := 0.0
		for i := range obs {
			s := supports[i]
			den := 0.0
			for k, j := range s.paths {
				den += prior[j] * s.vals[k]
			}
			if den <= 0 {
				// All supported paths currently have zero prior (can
				// happen before smoothing kicks in); fall back to uniform
				// responsibility over the support.
				gamma := float64(counts[i]) / float64(len(s.paths))
				for _, j := range s.paths {
					accumulate(edgeW, m.Paths[j], gamma)
				}
				continue
			}
			ll += float64(counts[i]) * math.Log(den)
			for k, j := range s.paths {
				gamma := prior[j] * s.vals[k] / den * float64(counts[i])
				accumulate(edgeW, m.Paths[j], gamma)
			}
		}
		st.LogLikelihood = ll

		// M-step: renormalize per branch block with smoothing.
		next := probs.Clone()
		maxDelta := 0.0
		for _, u := range m.Unknowns {
			total := 0.0
			for _, e := range u.Edges {
				total += edgeW[e] + cfg.Alpha
			}
			if total <= 0 {
				continue
			}
			for _, e := range u.Edges {
				p := (edgeW[e] + cfg.Alpha) / total
				if d := math.Abs(p - next[e]); d > maxDelta {
					maxDelta = d
				}
				next[e] = p
			}
		}
		probs = next
		if maxDelta < cfg.Tol {
			st.Converged = true
			break
		}
	}
	return probs, st, nil
}

func accumulate(edgeW map[[2]ir.BlockID]float64, p *markov.Path, gamma float64) {
	// Iterate the ordered arc list, not the map: floating-point sums must
	// be reproducible run to run.
	for _, a := range p.Arcs {
		edgeW[a.Edge] += gamma * float64(a.Count)
	}
}

// dedup collapses equal sample values into (value, count) pairs in
// deterministic (ascending) order — durations are quantized, so this makes
// the EM cost independent of the raw sample count.
func dedup(samples []float64) ([]float64, []int) {
	m := make(map[float64]int)
	for _, s := range samples {
		m[s]++
	}
	vals := make([]float64, 0, len(m))
	for v := range m {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	counts := make([]int, len(vals))
	for i, v := range vals {
		counts[i] = m[v]
	}
	return vals, counts
}
