package tomography

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"codetomo/internal/markov"
)

// ErrNoSamples is returned when an estimator is invoked with nothing to
// estimate from: an empty sample set (or, for Incremental.Observe, an
// empty accumulated stream).
var ErrNoSamples = errors.New("tomography: no samples")

// EMConfig tunes the expectation-maximization estimator.
type EMConfig struct {
	// MaxIter bounds EM iterations (default 200).
	MaxIter int
	// Tol stops iteration when no probability moves more than this
	// (default 1e-6).
	Tol float64
	// KernelHalfWidth is the observation kernel's half width in cycles,
	// covering timer quantization and callee-subtraction noise. Values
	// <= 0 default to the mote's TickDiv (pass it explicitly when known).
	KernelHalfWidth float64
	// Alpha is the additive smoothing applied in the M-step so no branch
	// probability collapses to exactly zero (default 0.5 pseudo-counts).
	Alpha float64
	// Init optionally warm-starts EM from a previous estimate instead of
	// the uniform prior; edges missing from Init keep their uniform value.
	// Warm starting changes the trajectory (typically slashing the
	// iteration count on streaming re-estimation) but not the stopping
	// rule: EM still iterates until no probability moves more than Tol.
	Init markov.EdgeProbs
}

// withDefaults fills unset fields.
func (c EMConfig) withDefaults() EMConfig {
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.KernelHalfWidth <= 0 {
		c.KernelHalfWidth = 8
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	return c
}

// EMStats reports how the estimation went.
type EMStats struct {
	Iterations int
	Converged  bool
	// LogLikelihood is the final (smoothed-kernel) data log-likelihood.
	LogLikelihood float64
	// Unmatched counts observations that fell outside every path's kernel
	// and were soft-assigned to the nearest path.
	Unmatched int
}

// EstimateEM recovers branch probabilities from end-to-end duration samples
// (in cycles) by EM over the path mixture:
//
//	E-step: γ(i,j) ∝ π_j(θ)·K(t_i − τ_j)
//	M-step: p(e) ∝ Σ_{i,j} γ(i,j)·m_j(e)   (normalized per branch block)
//
// where π_j is the path prior under the current probabilities, τ_j the
// path's deterministic duration, m_j(e) its traversal count of edge e, and
// K a box kernel absorbing timer quantization.
//
// The hot loop runs on the dense indexed-path kernel (see
// markov.CompiledPaths); its results are bit-identical to the retained
// map-based reference implementation, EstimateEMReference. Samples must be
// finite — NaN or ±Inf durations are rejected with an error rather than
// silently skewing the dedup histogram.
func EstimateEM(m *Model, samples []float64, cfg EMConfig) (markov.EdgeProbs, EMStats, error) {
	var st EMStats
	if err := validateSamples(samples); err != nil {
		return nil, st, err
	}
	if len(m.Unknowns) == 0 {
		return m.InitialProbs(), st, nil
	}
	if len(samples) == 0 {
		return nil, st, ErrNoSamples
	}
	// Deduplicate observations into (value, count) — durations are
	// quantized so collapsing repeats makes EM cost independent of the
	// sample count.
	obs, counts := dedup(samples)
	return estimateEMDense(m, obs, counts, cfg)
}

// validateSamples rejects non-finite durations at the estimation API
// boundary: NaN keys collapse unpredictably in histograms and ±Inf
// observations pin the nearest-path fallback to an arbitrary extreme.
func validateSamples(samples []float64) error {
	for i, s := range samples {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("tomography: sample %d is not finite (%v)", i, s)
		}
	}
	return nil
}

// dedup collapses equal sample values into (value, count) pairs in
// ascending order — durations are quantized, so this makes the EM cost
// independent of the raw sample count. Callers must have validated the
// samples: NaN breaks both the sort and the run-length grouping.
func dedup(samples []float64) ([]float64, []int) {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	vals := make([]float64, 0, len(sorted))
	counts := make([]int, 0, len(sorted))
	for i := 0; i < len(sorted); {
		j := i + 1
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		vals = append(vals, sorted[i])
		counts = append(counts, j-i)
		i = j
	}
	return vals, counts
}
