package tomography

import (
	"fmt"
	"math"
	"sort"

	"codetomo/internal/markov"
)

// compiledModel caches the dense kernel inputs derived from a Model: the
// CSR-compiled path set (edge-indexed arcs) and the binary-search index
// over path durations. Built lazily, once, and shared by every estimation
// round over the model — including concurrent fleet streams.
type compiledModel struct {
	paths *markov.CompiledPaths
	times *markov.SortedTimes
	// unknown holds, per Unknown, the dense edge indices of its outgoing
	// edges in successor order (the M-step normalization groups).
	unknown [][]int32
}

// compiled returns the model's dense representation, building it on first
// use.
func (m *Model) compiled() *compiledModel {
	m.compileOnce.Do(func() {
		c := &compiledModel{
			paths: markov.Compile(m.Proc, m.Paths),
			times: markov.NewSortedTimes(m.PathTimes),
		}
		c.unknown = make([][]int32, len(m.Unknowns))
		for ui, u := range m.Unknowns {
			idx := make([]int32, len(u.Edges))
			for k, e := range u.Edges {
				i, ok := c.paths.Index.Index(e)
				if !ok {
					panic(fmt.Sprintf("tomography: unknown %v edge %v missing from CFG edge index", u.Block, e))
				}
				idx[k] = i
			}
			c.unknown[ui] = idx
		}
		m.comp = c
	})
	return m.comp
}

// estimateEMDense is the EM hot path over pre-deduplicated observations:
// obs ascending with positive counts. It performs the exact floating-point
// operation sequence of EstimateEMReference — same observation order, same
// per-support path order (ascending path index), same arc order — so the
// two implementations agree bit for bit; only the data layout differs
// (dense indexed arrays and reusable scratch buffers instead of maps and
// per-iteration clones).
func estimateEMDense(m *Model, obs []float64, counts []int, cfg EMConfig) (markov.EdgeProbs, EMStats, error) {
	cfg = cfg.withDefaults()
	var st EMStats
	if len(m.Unknowns) == 0 {
		return m.InitialProbs(), st, nil
	}
	if len(obs) == 0 {
		return nil, st, ErrNoSamples
	}
	c := m.compiled()
	cp, ix := c.paths, c.paths.Index
	nE, nP := ix.Len(), cp.NumPaths()

	// Starting point: uniform, overlaid with warm-start values when given.
	probs := ix.Dense(m.InitialProbs())
	if cfg.Init != nil {
		for e, v := range cfg.Init {
			if i, ok := ix.Index(e); ok {
				probs[i] = v
			}
		}
	}

	supStart, supPath, unmatched := buildSupports(c.times, obs, counts, cfg.KernelHalfWidth)
	st.Unmatched = unmatched

	// Per-iteration scratch, allocated once and reused: the shared
	// log-probability table, the path priors, and the expected
	// edge-traversal weights.
	logq := make([]float64, nE)
	prior := make([]float64, nP)
	edgeW := make([]float64, nE)

	for iter := 0; iter < cfg.MaxIter; iter++ {
		st.Iterations = iter + 1
		// Path priors under current θ: one log per edge, then a fused
		// multiply-sum per path.
		cp.LogProbs(probs, logq)
		cp.PathProbs(logq, prior)

		// E-step + M-step accumulation.
		for k := range edgeW {
			edgeW[k] = 0
		}
		ll := 0.0
		for i := range obs {
			sup := supPath[supStart[i]:supStart[i+1]]
			den := 0.0
			for _, j := range sup {
				den += prior[j]
			}
			cnt := float64(counts[i])
			if den <= 0 {
				// All supported paths currently have zero prior (can
				// happen before smoothing kicks in); fall back to uniform
				// responsibility over the support.
				gamma := cnt / float64(len(sup))
				for _, j := range sup {
					cp.AccumulateArcs(int(j), gamma, edgeW)
				}
				continue
			}
			ll += cnt * math.Log(den)
			for _, j := range sup {
				gamma := prior[j] / den * cnt
				cp.AccumulateArcs(int(j), gamma, edgeW)
			}
		}
		st.LogLikelihood = ll

		// M-step: renormalize per branch block with smoothing, updating the
		// dense vector in place (each edge's old value is read before it is
		// written, matching the reference's clone-then-update).
		maxDelta := 0.0
		for _, edges := range c.unknown {
			total := 0.0
			for _, ei := range edges {
				total += edgeW[ei] + cfg.Alpha
			}
			if total <= 0 {
				continue
			}
			for _, ei := range edges {
				p := (edgeW[ei] + cfg.Alpha) / total
				if d := math.Abs(p - probs[ei]); d > maxDelta {
					maxDelta = d
				}
				probs[ei] = p
			}
		}
		if maxDelta < cfg.Tol {
			st.Converged = true
			break
		}
	}
	return ix.Probs(probs), st, nil
}

// buildSupports constructs each observation's kernel support — the paths
// within hw of the observed duration, ascending by path index — by binary
// search over the sorted path times: O(n·log paths + support size) instead
// of the reference's O(n·paths) scan. Observations matching no path are
// soft-assigned to the nearest path (lowest index on distance ties, like
// the reference scan) and counted as unmatched.
func buildSupports(times *markov.SortedTimes, obs []float64, counts []int, hw float64) (supStart []int32, supPath []int32, unmatched int) {
	supStart = make([]int32, len(obs)+1)
	for i, t := range obs {
		lo, hi := times.Window(t, hw)
		if lo == hi {
			supPath = append(supPath, int32(times.Nearest(t)))
			unmatched += counts[i]
		} else {
			base := len(supPath)
			for k := lo; k < hi; k++ {
				supPath = append(supPath, times.Idx[k])
			}
			// The window is sorted by (time, index); the E-step accumulates
			// in ascending path-index order for reproducibility.
			s := supPath[base:]
			sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		}
		supStart[i+1] = int32(len(supPath))
	}
	return supStart, supPath, unmatched
}
