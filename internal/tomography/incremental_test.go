package tomography

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"codetomo/internal/ir"
	"codetomo/internal/markov"
)

func TestIncrementalConvergesOnStream(t *testing.T) {
	m := twoArmModel(t, 40)
	truth := markov.Uniform(m.Proc)
	truth[[2]ir.BlockID{0, 1}] = 0.7
	truth[[2]ir.BlockID{0, 2}] = 0.3
	samples := sampleDurations(t, m, truth, 4000, 1, 11)

	inc := NewIncremental(m, EM{Config: EMConfig{KernelHalfWidth: 0.5}}, 5e-3, 2)
	const batch = 200
	var est markov.EdgeProbs
	for i := 0; i < len(samples); i += batch {
		var err error
		est, err = inc.Observe(samples[i : i+batch])
		if err != nil {
			t.Fatal(err)
		}
	}
	if !inc.Converged() {
		t.Fatalf("stream did not converge after %d rounds", inc.Rounds())
	}
	// Once converged, later batches are absorbed without re-estimating.
	if inc.Rounds() >= len(samples)/batch {
		t.Fatalf("rounds = %d, expected early stop before %d", inc.Rounds(), len(samples)/batch)
	}
	if inc.SampleCount() != len(samples) {
		t.Fatalf("SampleCount = %d, want %d", inc.SampleCount(), len(samples))
	}
	if inc.Iterations() <= 0 {
		t.Fatal("EM iteration count not tracked")
	}
	if got := est[[2]ir.BlockID{0, 1}]; math.Abs(got-0.7) > 0.05 {
		t.Fatalf("taken probability = %v, want ~0.7", got)
	}
}

func TestIncrementalStopsReestimatingAfterConvergence(t *testing.T) {
	m := twoArmModel(t, 40)
	truth := markov.Uniform(m.Proc)
	truth[[2]ir.BlockID{0, 1}] = 0.5
	truth[[2]ir.BlockID{0, 2}] = 0.5
	samples := sampleDurations(t, m, truth, 1000, 1, 3)

	inc := NewIncremental(m, EM{Config: EMConfig{KernelHalfWidth: 0.5}}, 1e-2, 1)
	for i := 0; i < len(samples); i += 100 {
		if _, err := inc.Observe(samples[i : i+100]); err != nil {
			t.Fatal(err)
		}
		if inc.Converged() {
			break
		}
	}
	if !inc.Converged() {
		t.Skip("stream did not converge on this seed")
	}
	rounds, seen := inc.Rounds(), inc.SampleCount()
	if _, err := inc.Observe(samples[:100]); err != nil {
		t.Fatal(err)
	}
	if inc.Rounds() != rounds {
		t.Fatalf("re-estimated after convergence: rounds %d -> %d", rounds, inc.Rounds())
	}
	if inc.SampleCount() != seen+100 {
		t.Fatalf("post-convergence batch not absorbed: %d samples, want %d", inc.SampleCount(), seen+100)
	}
}

func TestIncrementalEmptyStream(t *testing.T) {
	// Regression: an empty first batch used to return (nil, nil), which
	// callers read as a (vacuous) estimate. The contract is now a typed
	// sentinel the caller can errors.Is on and treat as "nothing yet".
	m := twoArmModel(t, 40)
	inc := NewIncremental(m, EM{}, 0, 0)
	probs, err := inc.Observe(nil)
	if !errors.Is(err, ErrNoSamples) {
		t.Fatalf("empty stream: err=%v, want ErrNoSamples", err)
	}
	if probs != nil {
		t.Fatalf("empty stream: probs=%v, want nil", probs)
	}
	if inc.Rounds() != 0 || inc.Converged() {
		t.Fatal("empty stream must not count as a round")
	}

	// The stream stays usable: a later non-empty batch estimates normally.
	truth := markov.Uniform(m.Proc)
	samples := sampleDurations(t, m, truth, 400, 1, 5)
	if _, err := inc.Observe(samples); err != nil {
		t.Fatalf("batch after empty round: %v", err)
	}
	if inc.Rounds() != 1 || inc.Probs() == nil {
		t.Fatalf("rounds=%d probs=%v after recovery batch", inc.Rounds(), inc.Probs())
	}
}

func TestIncrementalRejectsNonFinite(t *testing.T) {
	m := twoArmModel(t, 40)
	inc := NewIncremental(m, EM{}, 0, 0)
	if _, err := inc.Observe([]float64{100, math.NaN()}); err == nil {
		t.Fatal("NaN sample accepted")
	}
	if inc.SampleCount() != 0 {
		t.Fatalf("rejected batch was absorbed: %d samples", inc.SampleCount())
	}
	if _, err := inc.Observe([]float64{math.Inf(1)}); err == nil {
		t.Fatal("+Inf sample accepted")
	}
}

func TestIncrementalWarmStartMatchesBatch(t *testing.T) {
	// Streaming with warm starts must land on the same estimate as the
	// one-shot batch solve over the same accumulated samples (within the
	// convergence tolerance), and the running histogram must agree with a
	// from-scratch dedup of everything seen.
	m := twoArmModel(t, 40)
	truth := markov.Uniform(m.Proc)
	truth[[2]ir.BlockID{0, 1}] = 0.8
	truth[[2]ir.BlockID{0, 2}] = 0.2
	samples := sampleDurations(t, m, truth, 3000, 1, 19)

	cfg := EMConfig{KernelHalfWidth: 0.5}
	inc := NewIncremental(m, EM{Config: cfg}, 0, 1000) // never declare converged
	inc.Patience = 1 << 30
	for i := 0; i < len(samples); i += 300 {
		if _, err := inc.Observe(samples[i : i+300]); err != nil {
			t.Fatal(err)
		}
	}
	wantObs, wantCounts := dedup(samples)
	if !reflect.DeepEqual(inc.obs, wantObs) || !reflect.DeepEqual(inc.counts, wantCounts) {
		t.Fatal("running histogram diverged from from-scratch dedup")
	}
	batch, _, err := EstimateEM(m, samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDelta(inc.Probs(), batch); d > 5e-3 {
		t.Fatalf("warm-started stream differs from batch solve by %v", d)
	}
}

func TestIncrementalWarmRoundCheaper(t *testing.T) {
	// The acceptance criterion behind the warm start: a round that merely
	// confirms a stable estimate should cost far fewer EM iterations than
	// the cold first round.
	// The wide kernel makes observation supports span both diamond arms,
	// so EM has to walk in over many iterations from the uniform start;
	// the warm round resumes next door to the optimum and needs strictly
	// fewer. (With well-separated paths EM one-steps and warm starting is
	// moot either way.)
	m := syntheticModel(t)
	truth := trueProbs(m, 0.7, 0.3)
	samples := sampleDurations(t, m, truth, 4000, 1, 23)
	cfg := EMConfig{KernelHalfWidth: 120, Tol: 1e-10, MaxIter: 500}
	inc := NewIncremental(m, EM{Config: cfg}, 0, 1000)
	inc.Patience = 1 << 30
	if _, err := inc.Observe(samples[:3800]); err != nil {
		t.Fatal(err)
	}
	cold := inc.Iterations()
	if _, err := inc.Observe(samples[3800:]); err != nil {
		t.Fatal(err)
	}
	warm := inc.Iterations() - cold
	if warm >= cold {
		t.Fatalf("warm round took %d iterations vs cold %d", warm, cold)
	}
}

func TestIncrementalNonEMEstimator(t *testing.T) {
	m := twoArmModel(t, 40)
	truth := markov.Uniform(m.Proc)
	samples := sampleDurations(t, m, truth, 500, 1, 7)
	inc := NewIncremental(m, Moments{}, 1e-3, 2)
	if _, err := inc.Observe(samples); err != nil {
		t.Fatal(err)
	}
	if inc.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", inc.Rounds())
	}
	if inc.Iterations() != 0 {
		t.Fatalf("moments estimator reported %d EM iterations", inc.Iterations())
	}
}

func TestMaxDelta(t *testing.T) {
	e1 := [2]ir.BlockID{0, 1}
	e2 := [2]ir.BlockID{0, 2}
	a := markov.EdgeProbs{e1: 0.7, e2: 0.3}
	b := markov.EdgeProbs{e1: 0.6, e2: 0.4}
	if d := MaxDelta(a, b); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("MaxDelta = %v, want 0.1", d)
	}
	// Missing edges count as zero on the other side, in both directions.
	if d := MaxDelta(a, markov.EdgeProbs{e1: 0.7}); math.Abs(d-0.3) > 1e-12 {
		t.Fatalf("MaxDelta missing-in-b = %v, want 0.3", d)
	}
	if d := MaxDelta(markov.EdgeProbs{e1: 0.7}, a); math.Abs(d-0.3) > 1e-12 {
		t.Fatalf("MaxDelta missing-in-a = %v, want 0.3", d)
	}
	if d := MaxDelta(nil, nil); d != 0 {
		t.Fatalf("MaxDelta(nil, nil) = %v", d)
	}
}
