package tomography

import (
	"math"
	"testing"

	"codetomo/internal/ir"
	"codetomo/internal/markov"
)

func TestIncrementalConvergesOnStream(t *testing.T) {
	m := twoArmModel(t, 40)
	truth := markov.Uniform(m.Proc)
	truth[[2]ir.BlockID{0, 1}] = 0.7
	truth[[2]ir.BlockID{0, 2}] = 0.3
	samples := sampleDurations(t, m, truth, 4000, 1, 11)

	inc := NewIncremental(m, EM{Config: EMConfig{KernelHalfWidth: 0.5}}, 5e-3, 2)
	const batch = 200
	var est markov.EdgeProbs
	for i := 0; i < len(samples); i += batch {
		var err error
		est, err = inc.Observe(samples[i : i+batch])
		if err != nil {
			t.Fatal(err)
		}
	}
	if !inc.Converged() {
		t.Fatalf("stream did not converge after %d rounds", inc.Rounds())
	}
	// Once converged, later batches are absorbed without re-estimating.
	if inc.Rounds() >= len(samples)/batch {
		t.Fatalf("rounds = %d, expected early stop before %d", inc.Rounds(), len(samples)/batch)
	}
	if inc.SampleCount() != len(samples) {
		t.Fatalf("SampleCount = %d, want %d", inc.SampleCount(), len(samples))
	}
	if inc.Iterations() <= 0 {
		t.Fatal("EM iteration count not tracked")
	}
	if got := est[[2]ir.BlockID{0, 1}]; math.Abs(got-0.7) > 0.05 {
		t.Fatalf("taken probability = %v, want ~0.7", got)
	}
}

func TestIncrementalStopsReestimatingAfterConvergence(t *testing.T) {
	m := twoArmModel(t, 40)
	truth := markov.Uniform(m.Proc)
	truth[[2]ir.BlockID{0, 1}] = 0.5
	truth[[2]ir.BlockID{0, 2}] = 0.5
	samples := sampleDurations(t, m, truth, 1000, 1, 3)

	inc := NewIncremental(m, EM{Config: EMConfig{KernelHalfWidth: 0.5}}, 1e-2, 1)
	for i := 0; i < len(samples); i += 100 {
		if _, err := inc.Observe(samples[i : i+100]); err != nil {
			t.Fatal(err)
		}
		if inc.Converged() {
			break
		}
	}
	if !inc.Converged() {
		t.Skip("stream did not converge on this seed")
	}
	rounds, seen := inc.Rounds(), inc.SampleCount()
	if _, err := inc.Observe(samples[:100]); err != nil {
		t.Fatal(err)
	}
	if inc.Rounds() != rounds {
		t.Fatalf("re-estimated after convergence: rounds %d -> %d", rounds, inc.Rounds())
	}
	if inc.SampleCount() != seen+100 {
		t.Fatalf("post-convergence batch not absorbed: %d samples, want %d", inc.SampleCount(), seen+100)
	}
}

func TestIncrementalEmptyStream(t *testing.T) {
	m := twoArmModel(t, 40)
	inc := NewIncremental(m, EM{}, 0, 0)
	probs, err := inc.Observe(nil)
	if err != nil || probs != nil {
		t.Fatalf("empty stream: probs=%v err=%v", probs, err)
	}
	if inc.Rounds() != 0 || inc.Converged() {
		t.Fatal("empty stream must not count as a round")
	}
}

func TestIncrementalNonEMEstimator(t *testing.T) {
	m := twoArmModel(t, 40)
	truth := markov.Uniform(m.Proc)
	samples := sampleDurations(t, m, truth, 500, 1, 7)
	inc := NewIncremental(m, Moments{}, 1e-3, 2)
	if _, err := inc.Observe(samples); err != nil {
		t.Fatal(err)
	}
	if inc.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", inc.Rounds())
	}
	if inc.Iterations() != 0 {
		t.Fatalf("moments estimator reported %d EM iterations", inc.Iterations())
	}
}

func TestMaxDelta(t *testing.T) {
	e1 := [2]ir.BlockID{0, 1}
	e2 := [2]ir.BlockID{0, 2}
	a := markov.EdgeProbs{e1: 0.7, e2: 0.3}
	b := markov.EdgeProbs{e1: 0.6, e2: 0.4}
	if d := MaxDelta(a, b); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("MaxDelta = %v, want 0.1", d)
	}
	// Missing edges count as zero on the other side, in both directions.
	if d := MaxDelta(a, markov.EdgeProbs{e1: 0.7}); math.Abs(d-0.3) > 1e-12 {
		t.Fatalf("MaxDelta missing-in-b = %v, want 0.3", d)
	}
	if d := MaxDelta(markov.EdgeProbs{e1: 0.7}, a); math.Abs(d-0.3) > 1e-12 {
		t.Fatalf("MaxDelta missing-in-a = %v, want 0.3", d)
	}
	if d := MaxDelta(nil, nil); d != 0 {
		t.Fatalf("MaxDelta(nil, nil) = %v", d)
	}
}
