package tomography

// Tests for the static-analysis integration: value-range pinning of
// provably one-way branches and the static feasible envelope.

import (
	"testing"

	"codetomo/internal/compile"
	"codetomo/internal/markov"
	"codetomo/internal/mote"
	"codetomo/internal/stats"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

// railProgram's handler has one branch the rail analysis resolves
// (sense() <= 1023 < 2000, always taken) and one genuinely data-dependent
// branch the estimator must still fit.
const railProgram = `
func handler() int {
	var v int;
	var r int;
	v = sense();
	r = 0;
	if (v < 2000) {
		r = r + 5;
	} else {
		r = 99;
	}
	if (v < 500) {
		r = r + 3;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 800; i = i + 1) {
		acc = acc + handler();
	}
	debug(acc);
}`

func TestStaticResolvePinsBranch(t *testing.T) {
	out, err := compile.Build(railProgram, compile.Options{Instrument: compile.ModeTimestamps})
	if err != nil {
		t.Fatal(err)
	}
	enum := markov.EnumerateOptions{MaxVisits: 8, MaxPaths: 20000}

	base, err := NewModel(out, "handler", mote.StaticNotTaken{}, enum)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModelOpts(out, "handler", mote.StaticNotTaken{}, enum,
		ModelOptions{StaticResolve: true})
	if err != nil {
		t.Fatal(err)
	}

	// Exactly one of the two branches is provable; it moves from the
	// unknowns to the pinned set.
	if len(base.Unknowns) != 2 {
		t.Fatalf("base unknowns = %d, want 2", len(base.Unknowns))
	}
	if len(m.Unknowns) != 1 {
		t.Fatalf("resolved unknowns = %d, want 1", len(m.Unknowns))
	}
	if len(m.Pinned) != 2 {
		t.Fatalf("pinned edges = %d, want 2 (both arms of one branch)", len(m.Pinned))
	}
	ones, zeros := 0, 0
	for _, p := range m.Pinned {
		switch p {
		case 1:
			ones++
		case 0:
			zeros++
		}
	}
	if ones != 1 || zeros != 1 {
		t.Fatalf("pinned probs = %v, want one 1 and one 0", m.Pinned)
	}

	// The starting point carries the pins; estimators never touch them.
	init := m.InitialProbs()
	for e, p := range m.Pinned {
		if init[e] != p {
			t.Fatalf("InitialProbs[%v] = %v, want pinned %v", e, init[e], p)
		}
	}

	// handler is loop-free, so the static envelope must be bounded.
	if m.Envelope == nil || !m.Envelope.Bounded {
		t.Fatalf("envelope = %+v, want bounded", m.Envelope)
	}
	if m.Envelope.MinCycles == 0 || m.Envelope.MinCycles >= m.Envelope.MaxCycles {
		t.Fatalf("degenerate envelope %+v", m.Envelope)
	}

	// End to end: measure on a mote, estimate, and check the pins survive
	// and the fit sits inside the static envelope.
	cfgM := mote.DefaultConfig()
	cfgM.TickDiv = 1
	cfgM.Sensor = workload.NewGaussian(stats.NewRNG(11), 400, 180)
	machine := mote.New(out.Code, cfgM)
	if err := machine.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	ivs, err := trace.Extract(machine.Trace())
	if err != nil {
		t.Fatal(err)
	}
	pm := out.Meta.ProcByName["handler"]
	samples := trace.DurationsCycles(trace.ExclusiveByProc(ivs)[pm.Index], 1)
	if len(samples) != 800 {
		t.Fatalf("samples = %d, want 800", len(samples))
	}
	est, st, err := EstimateEM(m, samples, EMConfig{KernelHalfWidth: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations == 0 {
		t.Fatal("EM did not run")
	}
	for e, p := range m.Pinned {
		if est[e] != p {
			t.Fatalf("estimate moved pinned edge %v: %v, want %v", e, est[e], p)
		}
	}
	if !m.EnvelopeCheck(est, 1) {
		t.Fatalf("EM estimate violates the static envelope %+v", m.Envelope)
	}
}

func TestEnvelopeCheck(t *testing.T) {
	m := syntheticModel(t)
	probs := m.InitialProbs()

	// No envelope: always passes.
	if !m.EnvelopeCheck(probs, 0) {
		t.Fatal("nil envelope should pass")
	}

	// A generous envelope around the real path-time range passes.
	lo, hi := m.PathTimes[0], m.PathTimes[0]
	for _, pt := range m.PathTimes {
		if pt < lo {
			lo = pt
		}
		if pt > hi {
			hi = pt
		}
	}
	m.Envelope = &compile.StaticEnvelope{
		MinCycles: uint64(lo), MaxCycles: uint64(hi), Bounded: true,
	}
	if !m.EnvelopeCheck(probs, 1) {
		t.Fatalf("uniform mean outside [%v,%v]", lo, hi)
	}

	// An envelope the mixture cannot reach fails: the shortest possible
	// path is already longer than the claimed maximum.
	m.Envelope = &compile.StaticEnvelope{MinCycles: 0, MaxCycles: uint64(lo) - 5, Bounded: true}
	if m.EnvelopeCheck(probs, 1) {
		t.Fatal("infeasible envelope should fail")
	}

	// Unbounded envelopes are vacuous.
	m.Envelope = &compile.StaticEnvelope{Bounded: false}
	if !m.EnvelopeCheck(probs, 0) {
		t.Fatal("unbounded envelope should pass")
	}
}
