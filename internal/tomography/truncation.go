package tomography

import (
	"math"

	"codetomo/internal/ir"
	"codetomo/internal/markov"
)

// Estimation under power loss. An intermittently powered mote dies
// mid-procedure whenever its capacitor drains; the invocations that
// complete — the only ones that yield duration samples — are a biased
// draw of the path mixture, because a long path is more likely to be
// interrupted than a short one. Modeling power failures as a Poisson
// process with hazard λ per cycle, a path of duration T completes with
// probability e^{−λT}, so the completed-sample path distribution q
// relates to the true one p by q_i ∝ p_i·e^{−λT_i}. The base station
// observes two extra facts the biased estimate does not use: how many
// invocations were power-truncated (lost partials, counted from the
// epoch/power markers in the trace) and how many completed. Their ratio
// pins λ, and inverting the exponential tilt recovers p.

// truncationMaxExp caps exponents fed to math.Exp during the tilt so a
// pathological T_i/T_min ratio saturates instead of overflowing; the
// solved λ keeps the working exponents far below this.
const truncationMaxExp = 700

// TruncationHazard solves for the power-failure hazard λ (per cycle)
// implied by a completed-sample estimate probs and the observed lost /
// completed invocation counts. Writing f = completed/(completed+lost) for
// the completion rate and q_i for the path probabilities under probs, the
// tilt identity gives Σ_i q_i·e^{λT_i} = 1/f; the left side is strictly
// increasing in λ, so the root is found by bisection on
// [0, ln(1/f)/T_min]. Returns 0 when nothing was lost, when nothing
// completed (no samples to debias), or when probs puts no mass on any
// enumerated path.
func (m *Model) TruncationHazard(probs markov.EdgeProbs, lost, completed int) float64 {
	if lost <= 0 || completed <= 0 {
		return 0
	}
	q, tmin := m.pathDist(probs)
	if q == nil || tmin <= 0 {
		return 0
	}
	invF := float64(lost+completed) / float64(completed)
	z := func(lambda float64) float64 {
		sum := 0.0
		for i, qi := range q {
			if qi == 0 {
				continue
			}
			e := lambda * m.PathTimes[i]
			if e > truncationMaxExp {
				e = truncationMaxExp
			}
			sum += qi * math.Exp(e)
		}
		return sum
	}
	lo, hi := 0.0, math.Log(invF)/tmin
	// Z(0) = 1 ≤ 1/f and Z(hi) ≥ e^{hi·T_min} = 1/f, so the bracket holds.
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if z(mid) < invF {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// DebiasTruncation corrects a completed-sample estimate for power-loss
// survival bias: it solves for the hazard λ from the lost/completed
// counts (TruncationHazard), tilts the path distribution back by e^{+λT_i},
// and renormalizes into edge probabilities. With nothing lost (or nothing
// to solve from) the estimate is returned unchanged.
func (m *Model) DebiasTruncation(probs markov.EdgeProbs, lost, completed int) markov.EdgeProbs {
	lambda := m.TruncationHazard(probs, lost, completed)
	if lambda == 0 {
		return probs
	}
	q, _ := m.pathDist(probs)
	if q == nil {
		return probs
	}
	// p_i ∝ q_i·e^{λT_i}; shift exponents by the max to keep the weights
	// in range before normalizing through edge weights.
	maxT := 0.0
	for i, qi := range q {
		if qi > 0 && m.PathTimes[i] > maxT {
			maxT = m.PathTimes[i]
		}
	}
	w := make(map[[2]ir.BlockID]float64)
	for i, qi := range q {
		if qi == 0 {
			continue
		}
		e := lambda * (m.PathTimes[i] - maxT)
		if e < -truncationMaxExp {
			continue
		}
		pi := qi * math.Exp(e)
		for _, a := range m.Paths[i].Arcs {
			w[a.Edge] += pi * float64(a.Count)
		}
	}
	return m.probsFromEdgeWeights(w, 1e-9)
}

// pathDist returns the normalized path distribution under probs and the
// minimum positive path time, or (nil, 0) when probs puts no mass on any
// enumerated path.
func (m *Model) pathDist(probs markov.EdgeProbs) ([]float64, float64) {
	q := make([]float64, len(m.Paths))
	den := 0.0
	tmin := math.Inf(1)
	for i, p := range m.Paths {
		q[i] = p.Prob(probs)
		den += q[i]
		if q[i] > 0 && m.PathTimes[i] < tmin {
			tmin = m.PathTimes[i]
		}
	}
	if den <= 0 || math.IsInf(tmin, 1) {
		return nil, 0
	}
	for i := range q {
		q[i] /= den
	}
	return q, tmin
}
