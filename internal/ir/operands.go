package ir

// Operand accessors shared by the dataflow analyses, the IR verifier, and
// the structural validator. Keeping the def/use enumeration here — next to
// the instruction definitions — means a new instruction kind cannot be added
// without its operands being visible to every analysis at once.

// InstrDef returns the temp defined by an instruction, if any. Call and
// Builtin results use Temp(-1) to mean "discarded"; that is reported as no
// definition.
func InstrDef(in Instr) (Temp, bool) {
	switch i := in.(type) {
	case Const:
		return i.Dst, true
	case Mov:
		return i.Dst, true
	case Bin:
		return i.Dst, true
	case Un:
		return i.Dst, true
	case LoadVar:
		return i.Dst, true
	case LoadIndex:
		return i.Dst, true
	case Call:
		return i.Dst, i.Dst >= 0
	case Builtin:
		return i.Dst, i.Dst >= 0
	}
	return -1, false
}

// InstrUses calls f for each temp read by an instruction, in operand order.
func InstrUses(in Instr, f func(Temp)) {
	switch i := in.(type) {
	case Mov:
		f(i.Src)
	case Bin:
		f(i.A)
		f(i.B)
	case Un:
		f(i.A)
	case StoreVar:
		f(i.Src)
	case LoadIndex:
		f(i.Idx)
	case StoreIndex:
		f(i.Idx)
		f(i.Src)
	case Call:
		for _, a := range i.Args {
			f(a)
		}
	case Builtin:
		for _, a := range i.Args {
			f(a)
		}
	}
}

// TermUses calls f for each temp read by a terminator.
func TermUses(t Terminator, f func(Temp)) {
	switch tt := t.(type) {
	case Br:
		f(tt.Cond)
	case Ret:
		if tt.Val >= 0 {
			f(tt.Val)
		}
	}
}
