package ir

import "fmt"

// Pos is a source position carried through lowering so CFG-level analyses
// can report diagnostics against the original MiniC text. The zero Pos
// means "position unknown" (e.g. compiler-synthesized instructions).
type Pos struct {
	Line, Col int
}

// Known reports whether the position refers to real source text.
func (p Pos) Known() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.Known() {
		return "?:?"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}
