// Package ir defines the mid-level intermediate representation the MiniC
// compiler lowers to: three-address instructions over virtual registers,
// organized into basic blocks by package cfg. Block references inside
// terminators are plain integer block IDs so that ir does not depend on cfg.
package ir

import "fmt"

// Temp is a virtual register produced by lowering. Temps are numbered
// densely per procedure starting at 0.
type Temp int

func (t Temp) String() string { return fmt.Sprintf("t%d", int(t)) }

// BlockID identifies a basic block within a procedure.
type BlockID int

func (b BlockID) String() string { return fmt.Sprintf("b%d", int(b)) }

// Op enumerates binary and unary operators.
type Op int

// Binary and unary operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd // bitwise
	OpOr
	OpXor
	OpShl
	OpShr
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpNeg // unary minus
	OpNot // logical not
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpNeg: "neg", OpNot: "!",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsComparison reports whether the operator yields a boolean 0/1 result.
func (o Op) IsComparison() bool {
	switch o {
	case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
		return true
	}
	return false
}

// Instr is a non-terminator IR instruction.
type Instr interface {
	instr()
	String() string
}

// Const loads an immediate into a temp.
type Const struct {
	Dst Temp
	Val int
}

// Mov copies one temp to another.
type Mov struct {
	Dst, Src Temp
}

// Bin computes Dst = A op B.
type Bin struct {
	Dst  Temp
	Op   Op
	A, B Temp
}

// Un computes Dst = op A.
type Un struct {
	Dst Temp
	Op  Op
	A   Temp
}

// LoadVar reads a named scalar variable (local or global).
type LoadVar struct {
	Dst  Temp
	Name string
}

// StoreVar writes a named scalar variable (local or global).
type StoreVar struct {
	Name string
	Src  Temp
}

// LoadIndex reads Array[Idx].
type LoadIndex struct {
	Dst   Temp
	Array string
	Idx   Temp
}

// StoreIndex writes Array[Idx] = Src.
type StoreIndex struct {
	Array string
	Idx   Temp
	Src   Temp
}

// Call invokes a user procedure. Dst is -1 when the result is unused.
type Call struct {
	Dst  Temp
	Fn   string
	Args []Temp
}

// Builtin invokes a hardware intrinsic (sense, send, led, now, rand).
// Dst is -1 when the intrinsic yields no value or the result is unused.
type Builtin struct {
	Dst  Temp
	Name string
	Args []Temp
}

func (Const) instr()      {}
func (Mov) instr()        {}
func (Bin) instr()        {}
func (Un) instr()         {}
func (LoadVar) instr()    {}
func (StoreVar) instr()   {}
func (LoadIndex) instr()  {}
func (StoreIndex) instr() {}
func (Call) instr()       {}
func (Builtin) instr()    {}

func (i Const) String() string    { return fmt.Sprintf("%v = %d", i.Dst, i.Val) }
func (i Mov) String() string      { return fmt.Sprintf("%v = %v", i.Dst, i.Src) }
func (i Bin) String() string      { return fmt.Sprintf("%v = %v %v %v", i.Dst, i.A, i.Op, i.B) }
func (i Un) String() string       { return fmt.Sprintf("%v = %v %v", i.Dst, i.Op, i.A) }
func (i LoadVar) String() string  { return fmt.Sprintf("%v = %s", i.Dst, i.Name) }
func (i StoreVar) String() string { return fmt.Sprintf("%s = %v", i.Name, i.Src) }
func (i LoadIndex) String() string {
	return fmt.Sprintf("%v = %s[%v]", i.Dst, i.Array, i.Idx)
}
func (i StoreIndex) String() string {
	return fmt.Sprintf("%s[%v] = %v", i.Array, i.Idx, i.Src)
}
func (i Call) String() string {
	return fmt.Sprintf("%v = call %s%v", i.Dst, i.Fn, i.Args)
}
func (i Builtin) String() string {
	return fmt.Sprintf("%v = builtin %s%v", i.Dst, i.Name, i.Args)
}

// Terminator ends a basic block.
type Terminator interface {
	term()
	String() string
	// Successors returns the blocks control may transfer to.
	Successors() []BlockID
}

// Jmp transfers unconditionally.
type Jmp struct {
	Target BlockID
}

// Br transfers to True when Cond is nonzero, else to False.
type Br struct {
	Cond        Temp
	True, False BlockID
}

// Ret returns from the procedure; Val is -1 for void returns.
type Ret struct {
	Val Temp
}

// Halt stops the machine (used by main's implicit epilogue).
type Halt struct{}

func (Jmp) term()  {}
func (Br) term()   {}
func (Ret) term()  {}
func (Halt) term() {}

func (t Jmp) String() string { return fmt.Sprintf("jmp %v", t.Target) }
func (t Br) String() string {
	return fmt.Sprintf("br %v ? %v : %v", t.Cond, t.True, t.False)
}
func (t Ret) String() string {
	if t.Val < 0 {
		return "ret"
	}
	return fmt.Sprintf("ret %v", t.Val)
}
func (t Halt) String() string { return "halt" }

func (t Jmp) Successors() []BlockID  { return []BlockID{t.Target} }
func (t Br) Successors() []BlockID   { return []BlockID{t.True, t.False} }
func (t Ret) Successors() []BlockID  { return nil }
func (t Halt) Successors() []BlockID { return nil }
