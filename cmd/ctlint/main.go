// Command ctlint runs the MiniC static analyzer over source files and
// prints positioned diagnostics: unused variables and parameters,
// unreachable statements, constant branch conditions, dead stores,
// maybe-uninitialized reads, value-range findings (dead-branch,
// unreachable-block, loop-unbounded), and static cost bounds (provable
// WCET cycles, stack depth, recursion, flash size) against the M16 part
// limits. With -pages it adds a flash-page report: pages each procedure
// occupies, avoidable page straddles, and cold-split candidates under
// static branch priors.
//
// Usage:
//
//	ctlint [-json] [-costs] [-pages] [-max-cycles n] file.mc...
//
// Exit status is 0 when no error-severity diagnostics were found, 1 when
// at least one file has errors, and 2 on usage mistakes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"codetomo/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	costs := flag.Bool("costs", false, "include an informational cost summary per procedure")
	pages := flag.Bool("pages", false, "include a flash-page occupancy report and cold-split candidates per procedure")
	maxCycles := flag.Uint64("max-cycles", 0, "warn when a procedure's provable worst-case cycle bound exceeds this (0 = off)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ctlint [flags] file.mc...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := lint.Options{CostReport: *costs, PageReport: *pages, MaxCycles: *maxCycles}
	var all []lint.Diag
	for _, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ctlint:", err)
			os.Exit(2)
		}
		all = append(all, lint.Run(name, string(src), opts)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []lint.Diag{} // a run with no findings is [], not null
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "ctlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}

	for _, d := range all {
		if d.Severity == lint.SevError {
			os.Exit(1)
		}
	}
}
