// Command minicc compiles a MiniC source file to M16 machine code and
// prints an annotated assembly listing, optionally with profiling
// instrumentation and per-procedure CFG dumps.
//
// Usage:
//
//	minicc [-instrument none|timestamps|counters] [-dot proc] file.mc
package main

import (
	"flag"
	"fmt"
	"os"

	"codetomo/internal/compile"
)

func main() {
	instrument := flag.String("instrument", "none", "instrumentation: none, timestamps, or counters")
	dot := flag.String("dot", "", "print the named procedure's CFG in Graphviz DOT and exit")
	stats := flag.Bool("stats", false, "print code size and global usage summary")
	fuse := flag.Bool("fuse", false, "enable compare-branch fusion")
	rotate := flag.Bool("rotate", false, "enable loop rotation")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var mode compile.Mode
	switch *instrument {
	case "none":
		mode = compile.ModeNone
	case "timestamps":
		mode = compile.ModeTimestamps
	case "counters":
		mode = compile.ModeEdgeCounters
	default:
		fatal(fmt.Errorf("unknown instrumentation %q", *instrument))
	}

	out, err := compile.Build(string(src), compile.Options{Instrument: mode, FuseCompares: *fuse, RotateLoops: *rotate})
	if err != nil {
		fatal(err)
	}

	if *dot != "" {
		p := out.CFG.Proc(*dot)
		if p == nil {
			fatal(fmt.Errorf("no procedure %q", *dot))
		}
		fmt.Print(p.DOT(nil))
		return
	}
	if *stats {
		fmt.Printf("procedures: %d\n", len(out.CFG.Procs))
		fmt.Printf("instructions: %d\n", len(out.Code))
		fmt.Printf("code bytes: %d\n", out.Meta.CodeBytes)
		fmt.Printf("global words: %d\n", out.Meta.GlobalWords)
		fmt.Printf("arc counters: %d\n", out.Meta.NumArcCounters)
		return
	}
	fmt.Print(out.Listing())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
