package main

import (
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"codetomo/internal/station"
)

const tinyProgram = `
func work(v int) int {
	var r int;
	r = 0;
	if (v > 500) {
		r = r + v % 13;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 200; i = i + 1) {
		acc = acc + work(sense());
	}
	debug(acc);
}`

func writeProgram(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(path, []byte(tinyProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Invalid flag combinations must exit non-zero and name the offending flag
// on stderr, so a misconfigured campaign fails loudly instead of running
// with silently-clamped parameters.
func TestRunRejectsInvalidFlags(t *testing.T) {
	prog := writeProgram(t)
	cases := []struct {
		name     string
		args     []string
		wantFlag string
	}{
		{"no file", []string{}, "one source file"},
		{"drop out of range", []string{"-drop", "1.5", prog}, "-drop"},
		{"negative corrupt", []string{"-corrupt", "-0.1", prog}, "-corrupt"},
		{"brownout out of range", []string{"-brownout", "2", prog}, "-brownout"},
		{"stuck out of range", []string{"-stuck", "-1", prog}, "-stuck"},
		{"maxtrim out of range", []string{"-maxtrim", "1.5", prog}, "-maxtrim"},
		{"bad packet version", []string{"-packetver", "3", prog}, "-packetver"},
		{"negative arq", []string{"-arq", "-2", prog}, "-arq"},
		{"arq on legacy frames", []string{"-arq", "3", "-packetver", "1", prog}, "-arq"},
		{"negative trim", []string{"-trim", "-5", prog}, "-trim"},
		{"zero motes", []string{"-motes", "0", prog}, "-motes"},
		{"unknown estimator", []string{"-estimator", "psychic", prog}, "-estimator"},
		{"robust over histogram", []string{"-robust", "-estimator", "histogram", prog}, "-robust"},
		{"negative push retries", []string{"-push", "127.0.0.1:1", "-pushretries", "-1", prog}, "-pushretries"},
		{"unknown pgo pass", []string{"-pgo", "vectorize", prog}, "-pgo"},
		{"negative pagecost", []string{"-pagecost", "-1", prog}, "-pagecost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantFlag) {
				t.Fatalf("stderr does not name %q:\n%s", tc.wantFlag, stderr.String())
			}
			if !strings.Contains(stderr.String(), "usage:") {
				t.Fatalf("stderr has no usage message:\n%s", stderr.String())
			}
		})
	}
}

func TestRunMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "nope.mc")}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
}

func TestRunHappyPath(t *testing.T) {
	prog := writeProgram(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-motes", "2", "-workers", "2", prog}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"Fleet uplink", "estimates (per procedure", "placement result"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stdout missing %q:\n%s", want, out)
		}
	}
}

// A fleet campaign with the full PGO stack and a page penalty: the
// pipeline's output-equality gate makes exit 0 a semantics assertion.
func TestRunWithPGOPasses(t *testing.T) {
	prog := writeProgram(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-motes", "2", "-workers", "2", "-pgo", "inline,hotcold", "-pagecost", "5", prog}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "placement result") {
		t.Fatalf("stdout missing placement result:\n%s", stdout.String())
	}
}

// -push turns ctfleet into a station client: the fleet's frames go to a
// ctstationd TCP ingest instead of the local estimator.
func TestRunPushMode(t *testing.T) {
	prog := writeProgram(t)
	src, err := os.ReadFile(prog)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := station.New(station.Config{Program: string(src)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.ServeTCP(l)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-motes", "2", "-workers", "2", "-push", l.Addr().String(), prog}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "pushed 2 motes") {
		t.Fatalf("stdout missing push summary:\n%s", stdout.String())
	}
	if got := srv.Metrics().FramesAccepted; got == 0 {
		t.Fatal("station accepted no frames from the push")
	}
}

// The full fault path through the CLI: crashes, corruption, ARQ, and the
// robust estimator together must still complete and report recovery
// accounting.
func TestRunFaultyDeployment(t *testing.T) {
	prog := writeProgram(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-motes", "2", "-workers", "2",
		"-corrupt", "0.05", "-arq", "3",
		"-crash", "1000000", "-maxcycles", "4000000",
		"-robust",
		prog,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "mote resets") {
		t.Fatalf("stdout missing fault accounting:\n%s", stdout.String())
	}
}

// A wedged station — accepts the connection, never ACKs — must fail the
// push loudly and point at the knob, not hang the campaign.
func TestRunPushTimeout(t *testing.T) {
	prog := writeProgram(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(io.Discard, conn)
			}()
		}
	}()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-motes", "1", "-workers", "1",
		"-push", l.Addr().String(), "-pushtimeout", "200ms",
		prog,
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-pushtimeout") {
		t.Fatalf("stderr does not point at -pushtimeout:\n%s", stderr.String())
	}
}
