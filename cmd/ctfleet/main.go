// Command ctfleet runs the Code Tomography pipeline against a simulated
// sensor-network deployment: N motes execute the instrumented program
// under heterogeneous workloads and skewed clocks, upload their trace logs
// over a lossy radio link, and the base station estimates branch
// probabilities from the merged streams — incrementally, with per-procedure
// convergence-based early stop — before optimizing the placement.
//
// Usage:
//
//	ctfleet [-motes 4] [-workloads gaussian,uniform] [-drop 0.2] [-seed 1] file.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	codetomo "codetomo"
	"codetomo/internal/tomography"
)

func main() {
	motes := flag.Int("motes", 4, "deployment size")
	workloads := flag.String("workloads", "", "comma-separated input regimes assigned round-robin (default: -workload for every mote)")
	regime := flag.String("workload", "gaussian", "base input regime: gaussian, uniform, bursty, regime, diurnal")
	seed := flag.Int64("seed", 1, "master random seed (motes, clocks, and channel derive from it)")
	tick := flag.Int("tick", 8, "timer prescaler in cycles")
	estName := flag.String("estimator", "em", "estimator: em, moments, or histogram")
	drop := flag.Float64("drop", 0, "per-packet loss probability in [0,1]")
	dup := flag.Float64("dup", 0, "per-packet duplication probability in [0,1]")
	reorder := flag.Float64("reorder", 0, "per-packet reorder probability in [0,1]")
	perPacket := flag.Int("packet", 0, "trace events per radio packet (0 = default 32)")
	batches := flag.Int("batches", 0, "uplink rounds for incremental estimation (0 = default 8)")
	workers := flag.Int("workers", 0, "concurrent mote simulations (0 = default 4; affects wall time only)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ctfleet [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	cfg := codetomo.FleetConfig{
		Config:          codetomo.Config{Workload: *regime, Seed: *seed, TickDiv: *tick},
		Motes:           *motes,
		Workers:         *workers,
		EventsPerPacket: *perPacket,
		DropProb:        *drop,
		DupProb:         *dup,
		ReorderProb:     *reorder,
		Batches:         *batches,
	}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}
	switch *estName {
	case "em":
		// Default; tuned to the tick inside the pipeline.
	case "moments":
		cfg.Estimator = tomography.Moments{}
	case "histogram":
		cfg.Estimator = tomography.Histogram{Config: tomography.HistogramConfig{KernelHalfWidth: float64(*tick)}}
	default:
		fatal(fmt.Errorf("unknown estimator %q", *estName))
	}

	res, err := codetomo.RunFleet(string(src), cfg)
	if err != nil {
		fatal(err)
	}

	for _, tab := range res.Fleet.Tables() {
		fmt.Println(tab.Render())
	}

	fmt.Println("estimates (per procedure, merged fleet samples):")
	for _, pe := range res.Estimates {
		if pe.Fallback {
			fmt.Printf("  %-14s %6d samples  (untrusted model; layout left unchanged)\n", pe.Proc, pe.SampleCount)
			continue
		}
		fmt.Printf("  %-14s %6d samples  MAE vs fleet oracle %.4f\n", pe.Proc, pe.SampleCount, pe.MAE)
		for _, b := range pe.Branches {
			warn := ""
			if b.Ambiguity > 0.9 {
				warn = "  [structurally ambiguous at this timer resolution]"
			}
			fmt.Printf("      b%-3d -> b%-3d  est %.3f  oracle %.3f%s\n", b.FromBlock, b.ToBlock, b.Prob, b.Oracle, warn)
		}
	}

	fmt.Println("\nplacement result (uninstrumented, base workload):")
	fmt.Printf("  %-22s %14s %14s\n", "", "original", "optimized")
	fmt.Printf("  %-22s %14d %14d\n", "cycles", res.Before.Cycles, res.After.Cycles)
	fmt.Printf("  %-22s %14d %14d\n", "cond branches", res.Before.CondBranches, res.After.CondBranches)
	fmt.Printf("  %-22s %14d %14d\n", "mispredicts", res.Before.Mispredicts, res.After.Mispredicts)
	fmt.Printf("  %-22s %13.2f%% %13.2f%%\n", "mispredict rate",
		100*res.Before.MispredictRate(), 100*res.After.MispredictRate())
	fmt.Printf("  %-22s %14.1f %14.1f\n", "energy (uJ)", res.Before.EnergyUJ, res.After.EnergyUJ)
	fmt.Printf("\n  misprediction reduction: %.1f%%   speedup: %.3fx\n",
		100*res.MispredictReduction(), res.Speedup())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctfleet:", err)
	os.Exit(1)
}
