// Command ctfleet runs the Code Tomography pipeline against a simulated
// sensor-network deployment: N motes execute the instrumented program
// under heterogeneous workloads and skewed clocks — optionally with
// injected crashes, brownouts, and sensor faults — upload their trace logs
// over a lossy, corrupting radio link with optional ARQ recovery, and the
// base station estimates branch probabilities from the merged streams —
// incrementally, with per-procedure convergence-based early stop — before
// optimizing the placement.
//
// Usage:
//
//	ctfleet [-motes 4] [-drop 0.2] [-corrupt 0.05] [-arq 3] [-crash 2000000] [-robust] file.mc
//	ctfleet -harvest 0.8 -capacitor 60 -ckpt 4 file.mc    # intermittent, energy-harvesting fleet
//	ctfleet -motes 4 -push 127.0.0.1:7100 file.mc    # upload to a running ctstationd instead
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	codetomo "codetomo"
	"codetomo/internal/cli"
	"codetomo/internal/station"
	"codetomo/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: parse, validate, execute, report. Exit
// codes: 0 success, 1 pipeline failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ctfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	motes := fs.Int("motes", 4, "deployment size")
	workloads := fs.String("workloads", "", "comma-separated input regimes assigned round-robin (default: -workload for every mote)")
	regime := fs.String("workload", "gaussian", "base input regime: gaussian, uniform, bursty, regime, diurnal")
	seed := fs.Int64("seed", 1, "master random seed (motes, clocks, channel, and faults derive from it)")
	tick := fs.Int("tick", 8, "timer prescaler in cycles")
	estName := fs.String("estimator", "em", "estimator: em, moments, or histogram")
	drop := fs.Float64("drop", 0, "per-packet loss probability in [0,1]")
	dup := fs.Float64("dup", 0, "per-packet duplication probability in [0,1]")
	reorder := fs.Float64("reorder", 0, "per-packet reorder probability in [0,1]")
	corrupt := fs.Float64("corrupt", 0, "per-transmission bit-flip probability in [0,1]")
	packetver := fs.Int("packetver", trace.PacketVersionCRC, "uplink wire format: 2 (CRC-16) or 1 (legacy, no checksum)")
	arq := fs.Int("arq", 0, "max selective-repeat retransmission rounds per uplink (0 = off; requires -packetver 2)")
	arqBackoff := fs.Uint64("arqbackoff", 0, "base backoff ticks between ARQ rounds (0 = default 64)")
	crash := fs.Uint64("crash", 0, "mean cycles between watchdog resets (0 = no crash injection)")
	brownout := fs.Float64("brownout", 0, "probability in [0,1] that a reset is a long brownout")
	stuck := fs.Float64("stuck", 0, "per-read probability in [0,1] of an ADC stuck-at episode")
	adcnoise := fs.Float64("adcnoise", 0, "per-read probability in [0,1] of an ADC glitch")
	faultseed := fs.Int64("faultseed", 0, "fault-injection seed (0 = derive from -seed)")
	harvest := fs.Float64("harvest", 0, "mean harvested power in uJ per 1000 cycles (0 = mains power; CPU draw is ~1.35)")
	harvestNoise := fs.Float64("harvestnoise", 0, "sigma of the per-window lognormal harvest noise (0 = noiseless)")
	diurnal := fs.Uint64("diurnal", 0, "solar day length in cycles for the harvest envelope (0 = flat source)")
	capacitor := fs.Float64("capacitor", 0, "storage capacitor size in uJ (0 = default 1000)")
	ckpt := fs.Int("ckpt", 0, "checkpoint every K completed invocations (0 = off)")
	ckptLow := fs.Float64("ckptlow", 0, "checkpoint when charge falls below this fraction of capacity (0 = off)")
	maxcycles := fs.Uint64("maxcycles", 0, "per-mote cycle budget (0 = default)")
	robust := fs.Bool("robust", false, "outlier-robust estimation with per-procedure confidence gating")
	trim := fs.Float64("trim", 0, "robust outlier cut in cycles (0 = default 4x the EM kernel)")
	maxtrim := fs.Float64("maxtrim", 0, "trim fraction in [0,1] beyond which a procedure is low-confidence (0 = default 0.25)")
	perPacket := fs.Int("packet", 0, "trace events per radio packet (0 = default 32)")
	batches := fs.Int("batches", 0, "uplink rounds for incremental estimation (0 = default 8)")
	workers := fs.Int("workers", 0, "concurrent mote simulations (0 = default 4; affects wall time only)")
	cohort := fs.Int("cohort", 0, "motes per worker task in the streaming scheduler (0 = default 64; affects wall time and memory only)")
	pushAddr := fs.String("push", "", "push the fleet's frames to a ctstationd TCP ingest at this address instead of estimating locally")
	pushRetries := fs.Int("pushretries", 3, "stop-and-wait retransmissions per NAKed frame in -push mode")
	pushTimeout := fs.Duration("pushtimeout", station.DefaultAckTimeout, "per-frame ACK deadline in -push mode (a station that accepts but never answers aborts the session)")
	pgo := fs.String("pgo", "", "profile-guided passes beyond placement: comma-separated subset of inline,superblock,hotcold,pagepack, or all/none")
	pageCost := fs.Int("pagecost", 0, "flash page-crossing penalty in cycles charged by the mote (0 = uniform flash)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "ctfleet:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "ctfleet:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "ctfleet:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "ctfleet:", err)
			}
		}()
	}
	usage := cli.Usage(fs, stderr, "ctfleet", "[flags] file.mc")
	if fs.NArg() != 1 {
		return usage("expected exactly one source file, got %d args", fs.NArg())
	}
	if p, bad := cli.BadProbability(
		cli.ProbFlag{Name: "-drop", Val: *drop}, cli.ProbFlag{Name: "-dup", Val: *dup},
		cli.ProbFlag{Name: "-reorder", Val: *reorder}, cli.ProbFlag{Name: "-corrupt", Val: *corrupt},
		cli.ProbFlag{Name: "-brownout", Val: *brownout}, cli.ProbFlag{Name: "-stuck", Val: *stuck},
		cli.ProbFlag{Name: "-adcnoise", Val: *adcnoise}, cli.ProbFlag{Name: "-maxtrim", Val: *maxtrim},
	); bad {
		return usage("invalid %s: %v is not a probability in [0, 1]", p.Name, p.Val)
	}
	if *packetver != trace.PacketVersionLegacy && *packetver != trace.PacketVersionCRC {
		return usage("invalid -packetver: %d (want %d or %d)", *packetver, trace.PacketVersionLegacy, trace.PacketVersionCRC)
	}
	if *arq < 0 {
		return usage("invalid -arq: %d retransmission rounds", *arq)
	}
	if *arq > 0 && *packetver == trace.PacketVersionLegacy {
		return usage("invalid -arq: ARQ needs CRC frames to know what to NACK; use it with -packetver %d", trace.PacketVersionCRC)
	}
	if *trim < 0 {
		return usage("invalid -trim: %v cycles", *trim)
	}
	if *motes < 1 {
		return usage("invalid -motes: %d", *motes)
	}
	if *cohort < 0 {
		return usage("invalid -cohort: %d", *cohort)
	}
	if *pushRetries < 0 {
		return usage("invalid -pushretries: %d", *pushRetries)
	}
	if *pushTimeout < 0 {
		return usage("invalid -pushtimeout: %v", *pushTimeout)
	}
	if *harvest < 0 {
		return usage("invalid -harvest: %v uJ/kcycle", *harvest)
	}
	if *harvestNoise < 0 {
		return usage("invalid -harvestnoise: %v", *harvestNoise)
	}
	if *capacitor < 0 {
		return usage("invalid -capacitor: %v uJ", *capacitor)
	}
	if *ckpt < 0 {
		return usage("invalid -ckpt: %d invocations", *ckpt)
	}
	if *ckptLow < 0 || *ckptLow >= 1 {
		return usage("invalid -ckptlow: %v is not a fraction in [0, 1)", *ckptLow)
	}
	if (*ckpt > 0 || *ckptLow > 0) && *harvest == 0 {
		return usage("invalid -ckpt/-ckptlow: checkpointing needs an energy schedule; set -harvest")
	}
	passes, err := cli.ParsePGOPasses(*pgo)
	if err != nil {
		return usage("invalid -pgo: %v", err)
	}
	if *pageCost < 0 {
		return usage("invalid -pagecost: %d cycles", *pageCost)
	}

	cfg := codetomo.FleetConfig{
		Config: codetomo.Config{Workload: *regime, Seed: *seed, TickDiv: *tick, MaxCycles: *maxcycles,
			PGOInline: passes.Inline, PGOSuperblock: passes.Superblock,
			PGOHotCold: passes.HotCold, PGOPagePack: passes.PagePack,
			PageCrossPenalty: *pageCost},
		Motes:           *motes,
		Workers:         *workers,
		Cohort:          *cohort,
		EventsPerPacket: *perPacket,
		DropProb:        *drop,
		DupProb:         *dup,
		ReorderProb:     *reorder,
		CorruptProb:     *corrupt,
		PacketVersion:   *packetver,
		ARQRetries:      *arq,
		ARQBackoffTicks: *arqBackoff,
		Robust:          *robust,
		TrimWidth:       *trim,
		MaxTrimFraction: *maxtrim,
		Batches:         *batches,
	}
	cfg.Faults.CrashMTBFCycles = *crash
	cfg.Faults.BrownoutProb = *brownout
	cfg.Faults.SensorStuckProb = *stuck
	cfg.Faults.SensorNoiseProb = *adcnoise
	cfg.Faults.Seed = *faultseed
	cfg.Energy.HarvestUJPerKCycle = *harvest
	cfg.Energy.HarvestNoiseSigma = *harvestNoise
	cfg.Energy.DiurnalPeriodCycles = *diurnal
	cfg.Energy.CapacityUJ = *capacitor
	cfg.Checkpoint.EveryKInvocations = *ckpt
	cfg.Checkpoint.OnLowChargeFrac = *ckptLow
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}
	est, err := cli.Estimator(*estName, *tick)
	if err != nil {
		return usage("invalid -estimator: %v", err)
	}
	cfg.Estimator = est
	if *robust && *estName != "em" {
		return usage("invalid -robust: the robust estimator wraps EM; drop -estimator %s", *estName)
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "ctfleet:", err)
		return 1
	}

	if *pushAddr != "" {
		// Client mode: stream the deployment to a running base station over
		// its ARQ'd TCP ingest — each cohort's frames go out the moment
		// they are simulated, so the fleet is never materialized client-side
		// and the station does the estimating.
		sess, err := station.DialPush(*pushAddr, station.PushConfig{Retries: *pushRetries, AckTimeout: *pushTimeout})
		if err != nil {
			fmt.Fprintln(stderr, "ctfleet:", err)
			return 1
		}
		defer sess.Close()
		pushed := 0
		err = codetomo.FleetFrames(string(src), cfg, func(frames [][]byte) error {
			pushed++
			return sess.Send(frames)
		})
		if err != nil {
			fmt.Fprintln(stderr, "ctfleet:", err)
			if errors.Is(err, station.ErrAckTimeout) {
				fmt.Fprintln(stderr, "ctfleet: the station accepted the connection but never ACKed; raise -pushtimeout or check the station")
			}
			return 1
		}
		st := sess.Stats()
		fmt.Fprintf(stdout, "pushed %d motes to %s: %d frames, %d acked, %d retransmitted, %d failed\n",
			pushed, *pushAddr, st.Frames, st.Acked, st.Retransmissions, st.Failed)
		if st.Failed > 0 {
			return 1
		}
		return 0
	}

	res, err := codetomo.RunFleet(string(src), cfg)
	if err != nil {
		fmt.Fprintln(stderr, "ctfleet:", err)
		return 1
	}

	for _, tab := range res.Fleet.Tables() {
		fmt.Fprintln(stdout, tab.Render())
	}

	fmt.Fprintln(stdout, "estimates (per procedure, merged fleet samples):")
	for _, pe := range res.Estimates {
		if pe.Fallback {
			fmt.Fprintf(stdout, "  %-14s %6d samples  (untrusted model; layout left unchanged)\n", pe.Proc, pe.SampleCount)
			continue
		}
		note := ""
		if pe.TrimmedSamples > 0 {
			note = fmt.Sprintf("  [%d outliers trimmed]", pe.TrimmedSamples)
		}
		if pe.LowConfidence {
			note += "  [low confidence; layout left unchanged]"
		}
		fmt.Fprintf(stdout, "  %-14s %6d samples  MAE vs fleet oracle %.4f%s\n", pe.Proc, pe.SampleCount, pe.MAE, note)
		for _, b := range pe.Branches {
			warn := ""
			if b.Ambiguity > 0.9 {
				warn = "  [structurally ambiguous at this timer resolution]"
			}
			fmt.Fprintf(stdout, "      b%-3d -> b%-3d  est %.3f  oracle %.3f%s\n", b.FromBlock, b.ToBlock, b.Prob, b.Oracle, warn)
		}
	}

	fmt.Fprintln(stdout, "\nplacement result (uninstrumented, base workload):")
	fmt.Fprintf(stdout, "  %-22s %14s %14s\n", "", "original", "optimized")
	fmt.Fprintf(stdout, "  %-22s %14d %14d\n", "cycles", res.Before.Cycles, res.After.Cycles)
	fmt.Fprintf(stdout, "  %-22s %14d %14d\n", "cond branches", res.Before.CondBranches, res.After.CondBranches)
	fmt.Fprintf(stdout, "  %-22s %14d %14d\n", "mispredicts", res.Before.Mispredicts, res.After.Mispredicts)
	fmt.Fprintf(stdout, "  %-22s %13.2f%% %13.2f%%\n", "mispredict rate",
		100*res.Before.MispredictRate(), 100*res.After.MispredictRate())
	fmt.Fprintf(stdout, "  %-22s %14.1f %14.1f\n", "energy (uJ)", res.Before.EnergyUJ, res.After.EnergyUJ)
	fmt.Fprintf(stdout, "\n  misprediction reduction: %.1f%%   speedup: %.3fx\n",
		100*res.MispredictReduction(), res.Speedup())

	if it := res.Intermittence; it != nil {
		fmt.Fprintln(stdout, "\nintermittent execution (harvested power):")
		fmt.Fprintf(stdout, "  %-34s %d completed, %d lost partials (%.1f%% completion)\n",
			"invocations", it.Completed, it.LostPartials, 100*it.CompletionRate)
		fmt.Fprintf(stdout, "  %-34s %.3g per cycle at mean duration %.0f cycles\n",
			"power-failure hazard", it.HazardPerCycle, it.MeanDurationCycles)
		fmt.Fprintf(stdout, "  %-34s %.0f measured, %.0f predicted optimized\n",
			"completed invocations per joule", it.CompletedPerJoule, it.PredictedCompletedPerJoule)
	}
	return 0
}
