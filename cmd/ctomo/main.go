// Command ctomo runs the full Code Tomography pipeline on a MiniC program:
// profile with procedure-boundary timestamps, estimate branch probabilities
// from the timing samples alone, optimize the code placement, and report
// the misprediction and cycle improvements.
//
// Usage:
//
//	ctomo [-workload gaussian] [-seed 1] [-tick 8] [-estimator em|moments|histogram] [-static] [-pgo all] [-pagecost 5] file.mc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	codetomo "codetomo"
	"codetomo/internal/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: parse, validate, execute, report. Exit
// codes: 0 success, 1 pipeline failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ctomo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	regime := fs.String("workload", "gaussian", "input regime: gaussian, uniform, bursty, regime, diurnal")
	seed := fs.Int64("seed", 1, "workload random seed")
	tick := fs.Int("tick", 8, "timer prescaler in cycles")
	estName := fs.String("estimator", "em", "estimator: em, moments, or histogram")
	fuse := fs.Bool("fuse", false, "enable compare-branch fusion in all builds")
	rotate := fs.Bool("rotate", false, "enable loop rotation in all builds")
	static := fs.Bool("static", false, "pin statically resolved branches and check fits against the static envelope")
	pgo := fs.String("pgo", "", "profile-guided passes beyond placement: comma-separated subset of inline,superblock,hotcold,pagepack, or all/none")
	pageCost := fs.Int("pagecost", 0, "flash page-crossing penalty in cycles charged by the mote (0 = uniform flash)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	usage := cli.Usage(fs, stderr, "ctomo", "[flags] file.mc")
	if fs.NArg() != 1 {
		return usage("expected exactly one source file, got %d args", fs.NArg())
	}
	if *tick < 1 {
		return usage("invalid -tick: %d cycles", *tick)
	}
	passes, err := cli.ParsePGOPasses(*pgo)
	if err != nil {
		return usage("invalid -pgo: %v", err)
	}
	if *pageCost < 0 {
		return usage("invalid -pagecost: %d cycles", *pageCost)
	}

	cfg := codetomo.Config{Workload: *regime, Seed: *seed, TickDiv: *tick,
		FuseCompares: *fuse, RotateLoops: *rotate, StaticResolve: *static,
		PGOInline: passes.Inline, PGOSuperblock: passes.Superblock,
		PGOHotCold: passes.HotCold, PGOPagePack: passes.PagePack,
		PageCrossPenalty: *pageCost}
	est, err := cli.Estimator(*estName, *tick)
	if err != nil {
		return usage("invalid -estimator: %v", err)
	}
	cfg.Estimator = est

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "ctomo:", err)
		return cli.ExitFailure
	}
	res, err := codetomo.Run(string(src), cfg)
	if err != nil {
		fmt.Fprintln(stderr, "ctomo:", err)
		return cli.ExitFailure
	}

	fmt.Fprintln(stdout, "estimates (per procedure):")
	for _, pe := range res.Estimates {
		if pe.Fallback {
			fmt.Fprintf(stdout, "  %-14s %5d samples  (untrusted model; layout left unchanged)\n", pe.Proc, pe.SampleCount)
			continue
		}
		fmt.Fprintf(stdout, "  %-14s %5d samples  MAE vs oracle %.4f\n", pe.Proc, pe.SampleCount, pe.MAE)
		for _, b := range pe.Branches {
			warn := ""
			if b.Ambiguity > 0.9 {
				warn = "  [structurally ambiguous at this timer resolution]"
			}
			fmt.Fprintf(stdout, "      b%-3d -> b%-3d  est %.3f  oracle %.3f%s\n", b.FromBlock, b.ToBlock, b.Prob, b.Oracle, warn)
		}
	}

	fmt.Fprintln(stdout, "\nplacement result (uninstrumented, identical workload):")
	fmt.Fprintf(stdout, "  %-22s %14s %14s\n", "", "original", "optimized")
	fmt.Fprintf(stdout, "  %-22s %14d %14d\n", "cycles", res.Before.Cycles, res.After.Cycles)
	fmt.Fprintf(stdout, "  %-22s %14d %14d\n", "cond branches", res.Before.CondBranches, res.After.CondBranches)
	fmt.Fprintf(stdout, "  %-22s %14d %14d\n", "mispredicts", res.Before.Mispredicts, res.After.Mispredicts)
	fmt.Fprintf(stdout, "  %-22s %13.2f%% %13.2f%%\n", "mispredict rate",
		100*res.Before.MispredictRate(), 100*res.After.MispredictRate())
	fmt.Fprintf(stdout, "  %-22s %14.1f %14.1f\n", "energy (uJ)", res.Before.EnergyUJ, res.After.EnergyUJ)
	fmt.Fprintf(stdout, "\n  misprediction reduction: %.1f%%   speedup: %.3fx\n",
		100*res.MispredictReduction(), res.Speedup())
	return cli.ExitOK
}
