// Command ctomo runs the full Code Tomography pipeline on a MiniC program:
// profile with procedure-boundary timestamps, estimate branch probabilities
// from the timing samples alone, optimize the code placement, and report
// the misprediction and cycle improvements.
//
// Usage:
//
//	ctomo [-workload gaussian] [-seed 1] [-tick 8] [-estimator em|moments|histogram] [-static] file.mc
package main

import (
	"flag"
	"fmt"
	"os"

	codetomo "codetomo"
	"codetomo/internal/tomography"
)

func main() {
	regime := flag.String("workload", "gaussian", "input regime: gaussian, uniform, bursty, regime, diurnal")
	seed := flag.Int64("seed", 1, "workload random seed")
	tick := flag.Int("tick", 8, "timer prescaler in cycles")
	estName := flag.String("estimator", "em", "estimator: em, moments, or histogram")
	fuse := flag.Bool("fuse", false, "enable compare-branch fusion in all builds")
	rotate := flag.Bool("rotate", false, "enable loop rotation in all builds")
	static := flag.Bool("static", false, "pin statically resolved branches and check fits against the static envelope")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ctomo [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	cfg := codetomo.Config{Workload: *regime, Seed: *seed, TickDiv: *tick,
		FuseCompares: *fuse, RotateLoops: *rotate, StaticResolve: *static}
	switch *estName {
	case "em":
		// Default; tuned to the tick inside the pipeline.
	case "moments":
		cfg.Estimator = tomography.Moments{}
	case "histogram":
		cfg.Estimator = tomography.Histogram{Config: tomography.HistogramConfig{KernelHalfWidth: float64(*tick)}}
	default:
		fatal(fmt.Errorf("unknown estimator %q", *estName))
	}

	res, err := codetomo.Run(string(src), cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Println("estimates (per procedure):")
	for _, pe := range res.Estimates {
		if pe.Fallback {
			fmt.Printf("  %-14s %5d samples  (untrusted model; layout left unchanged)\n", pe.Proc, pe.SampleCount)
			continue
		}
		fmt.Printf("  %-14s %5d samples  MAE vs oracle %.4f\n", pe.Proc, pe.SampleCount, pe.MAE)
		for _, b := range pe.Branches {
			warn := ""
			if b.Ambiguity > 0.9 {
				warn = "  [structurally ambiguous at this timer resolution]"
			}
			fmt.Printf("      b%-3d -> b%-3d  est %.3f  oracle %.3f%s\n", b.FromBlock, b.ToBlock, b.Prob, b.Oracle, warn)
		}
	}

	fmt.Println("\nplacement result (uninstrumented, identical workload):")
	fmt.Printf("  %-22s %14s %14s\n", "", "original", "optimized")
	fmt.Printf("  %-22s %14d %14d\n", "cycles", res.Before.Cycles, res.After.Cycles)
	fmt.Printf("  %-22s %14d %14d\n", "cond branches", res.Before.CondBranches, res.After.CondBranches)
	fmt.Printf("  %-22s %14d %14d\n", "mispredicts", res.Before.Mispredicts, res.After.Mispredicts)
	fmt.Printf("  %-22s %13.2f%% %13.2f%%\n", "mispredict rate",
		100*res.Before.MispredictRate(), 100*res.After.MispredictRate())
	fmt.Printf("  %-22s %14.1f %14.1f\n", "energy (uJ)", res.Before.EnergyUJ, res.After.EnergyUJ)
	fmt.Printf("\n  misprediction reduction: %.1f%%   speedup: %.3fx\n",
		100*res.MispredictReduction(), res.Speedup())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctomo:", err)
	os.Exit(1)
}
