package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const tinyProgram = `
func work(v int) int {
	var r int;
	r = 0;
	if (v > 500) {
		r = r + v % 13;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 200; i = i + 1) {
		acc = acc + work(sense());
	}
	debug(acc);
}`

func writeProgram(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(path, []byte(tinyProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Invalid flags must exit 2 and name the offending flag on stderr — the
// same contract ctfleet and ctstationd follow.
func TestRunRejectsInvalidFlags(t *testing.T) {
	prog := writeProgram(t)
	cases := []struct {
		name     string
		args     []string
		wantFlag string
	}{
		{"no file", []string{}, "one source file"},
		{"two files", []string{prog, prog}, "one source file"},
		{"zero tick", []string{"-tick", "0", prog}, "-tick"},
		{"unknown estimator", []string{"-estimator", "psychic", prog}, "-estimator"},
		{"unknown pgo pass", []string{"-pgo", "inline,unroll", prog}, "-pgo"},
		{"negative pagecost", []string{"-pagecost", "-3", prog}, "-pagecost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantFlag) {
				t.Fatalf("stderr does not name %q:\n%s", tc.wantFlag, stderr.String())
			}
			if !strings.Contains(stderr.String(), "usage:") {
				t.Fatalf("stderr has no usage message:\n%s", stderr.String())
			}
		})
	}
}

func TestRunMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "nope.mc")}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
}

func TestRunHappyPath(t *testing.T) {
	prog := writeProgram(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-static", prog}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"estimates (per procedure", "placement result", "misprediction reduction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stdout missing %q:\n%s", want, out)
		}
	}
}

// The full PGO stack under a flash-page penalty must run the pipeline end
// to end: the output-equality check inside the pipeline catches any
// semantics change, so exit 0 here is a meaningful assertion.
func TestRunWithPGOPasses(t *testing.T) {
	prog := writeProgram(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-pgo", "all", "-pagecost", "5", prog}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "placement result") {
		t.Fatalf("stdout missing placement result:\n%s", stdout.String())
	}
}
