// Command ctstationd runs the Code Tomography base station as a
// long-running service: it ingests CTP2 trace frames from deployed motes
// over TCP (length-prefixed, per-frame ACK/NAK) and UDP (fire-and-forget),
// reassembles the per-mote streams on a set of shards, seals estimation
// epochs as traffic accumulates, and serves the resulting branch-
// probability models and layout suggestions over HTTP. With a data
// directory it journals every frame, so a restart resumes estimation
// exactly where the previous process stopped.
//
// Usage:
//
//	ctstationd [-listen 127.0.0.1:7100] [-http 127.0.0.1:7180] [-data dir] [-shards 2] [-epoch 64] file.mc
//
// SIGINT or SIGTERM drains the shards, flushes a final snapshot, and
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"codetomo/internal/cli"
	"codetomo/internal/station"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: parse, validate, serve until ctx is
// cancelled, drain. Exit codes: 0 clean shutdown, 1 runtime failure, 2
// usage error.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ctstationd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:7100", "TCP ingest address")
	udp := fs.String("udp", "", "UDP ingest address (empty = TCP only)")
	httpAddr := fs.String("http", "127.0.0.1:7180", "HTTP API address")
	data := fs.String("data", "", "data directory for the frame log and model snapshots (empty = in-memory only)")
	shards := fs.Int("shards", 2, "reassembly shards (one worker each)")
	epoch := fs.Int("epoch", 64, "cut an estimation epoch every N accepted frames (0 = only via POST /v1/epoch)")
	tick := fs.Int("tick", 8, "the deployment's timer prescaler in cycles")
	estName := fs.String("estimator", "em", "estimator: em, moments, or histogram")
	static := fs.Bool("static", false, "pin statically resolved branches in the estimation models")
	minsamples := fs.Int("minsamples", 50, "fewest samples before a procedure's model is trusted")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	usage := cli.Usage(fs, stderr, "ctstationd", "[flags] file.mc")
	if fs.NArg() != 1 {
		return usage("expected exactly one source file, got %d args", fs.NArg())
	}
	if *shards < 1 {
		return usage("invalid -shards: %d", *shards)
	}
	if *epoch < 0 {
		return usage("invalid -epoch: %d frames", *epoch)
	}
	if *tick < 1 {
		return usage("invalid -tick: %d cycles", *tick)
	}
	if *minsamples < 1 {
		return usage("invalid -minsamples: %d", *minsamples)
	}
	est, err := cli.Estimator(*estName, *tick)
	if err != nil {
		return usage("invalid -estimator: %v", err)
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "ctstationd:", err)
		return cli.ExitFailure
	}
	srv, err := station.New(station.Config{
		Program:       string(src),
		Shards:        *shards,
		TickDiv:       *tick,
		Estimator:     est,
		StaticResolve: *static,
		MinSamples:    *minsamples,
		EpochFrames:   *epoch,
		DataDir:       *data,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ctstationd:", err)
		return cli.ExitFailure
	}

	// Bind everything before announcing anything, so a supervisor parsing
	// the addresses never sees a partially-bound station.
	tcpL, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "ctstationd:", err)
		srv.Close()
		return cli.ExitFailure
	}
	var udpC net.PacketConn
	if *udp != "" {
		udpC, err = net.ListenPacket("udp", *udp)
		if err != nil {
			fmt.Fprintln(stderr, "ctstationd:", err)
			tcpL.Close()
			srv.Close()
			return cli.ExitFailure
		}
	}
	httpL, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintln(stderr, "ctstationd:", err)
		tcpL.Close()
		if udpC != nil {
			udpC.Close()
		}
		srv.Close()
		return cli.ExitFailure
	}

	fmt.Fprintf(stdout, "ctstationd: ingest tcp %s\n", tcpL.Addr())
	if udpC != nil {
		fmt.Fprintf(stdout, "ctstationd: ingest udp %s\n", udpC.LocalAddr())
	}
	fmt.Fprintf(stdout, "ctstationd: http %s\n", httpL.Addr())

	errCh := make(chan error, 3)
	go func() { errCh <- srv.ServeTCP(tcpL) }()
	if udpC != nil {
		go func() { errCh <- srv.ServeUDP(udpC) }()
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(httpL); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	code := cli.ExitOK
	select {
	case <-ctx.Done():
	case err := <-errCh:
		if err != nil {
			fmt.Fprintln(stderr, "ctstationd:", err)
			code = cli.ExitFailure
		}
	}

	// Drain: stop the listeners first so no new frames race the final
	// cut, then seal and flush.
	tcpL.Close()
	if udpC != nil {
		udpC.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(shutdownCtx) //nolint:errcheck // lingering API readers lose the race, by design
	if err := srv.Close(); err != nil {
		fmt.Fprintln(stderr, "ctstationd:", err)
		code = cli.ExitFailure
	}
	fmt.Fprintf(stdout, "ctstationd: drained; %d epochs sealed, %d frames ingested\n",
		srv.Epoch(), srv.Metrics().FramesAccepted)
	return code
}
