package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	codetomo "codetomo"
	"codetomo/internal/station"
)

const tinyProgram = `
func work(v int) int {
	var r int;
	r = 0;
	if (v > 500) {
		r = r + v % 13;
	}
	return r;
}

func main() {
	var i int;
	var acc int;
	acc = 0;
	for (i = 0; i < 200; i = i + 1) {
		acc = acc + work(sense());
	}
	debug(acc);
}`

func writeProgram(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(path, []byte(tinyProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// syncBuffer lets the test read run's stdout while run is still writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// Invalid flags must exit 2 and name the offending flag — the shared
// contract with ctomo and ctfleet.
func TestRunRejectsInvalidFlags(t *testing.T) {
	prog := writeProgram(t)
	cases := []struct {
		name     string
		args     []string
		wantFlag string
	}{
		{"no file", []string{}, "one source file"},
		{"zero shards", []string{"-shards", "0", prog}, "-shards"},
		{"negative epoch", []string{"-epoch", "-1", prog}, "-epoch"},
		{"zero tick", []string{"-tick", "0", prog}, "-tick"},
		{"zero minsamples", []string{"-minsamples", "0", prog}, "-minsamples"},
		{"unknown estimator", []string{"-estimator", "psychic", prog}, "-estimator"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(context.Background(), tc.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantFlag) {
				t.Fatalf("stderr does not name %q:\n%s", tc.wantFlag, stderr.String())
			}
			if !strings.Contains(stderr.String(), "usage:") {
				t.Fatalf("stderr has no usage message:\n%s", stderr.String())
			}
		})
	}
}

func TestRunMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{filepath.Join(t.TempDir(), "nope.mc")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
}

// waitForAddr polls run's stdout for an announced address line.
func waitForAddr(t *testing.T, out *syncBuffer, prefix string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				return strings.TrimSpace(rest)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q line in stdout:\n%s", prefix, out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The full loopback round trip: boot the daemon on ephemeral ports, push
// one simulated fleet round over TCP, cut an epoch over HTTP, read the
// models back, and shut down cleanly with exit 0.
func TestStationSmoke(t *testing.T) {
	prog := writeProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-listen", "127.0.0.1:0", "-http", "127.0.0.1:0", "-udp", "127.0.0.1:0",
			"-epoch", "0", "-data", t.TempDir(), prog,
		}, &stdout, &stderr)
	}()

	tcpAddr := waitForAddr(t, &stdout, "ctstationd: ingest tcp ")
	httpAddr := waitForAddr(t, &stdout, "ctstationd: http ")

	uploads, err := codetomo.FleetUploads(tinyProgram, codetomo.FleetConfig{Motes: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := station.PushUploads(tcpAddr, uploads, station.PushConfig{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Acked == 0 || st.Failed != 0 {
		t.Fatalf("push stats %+v", st)
	}

	resp, err := http.Post("http://"+httpAddr+"/v1/epoch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var snap station.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Epoch != 1 || len(snap.Procs) == 0 {
		t.Fatalf("POST /v1/epoch = %+v", snap)
	}

	resp, err = http.Get("http://" + httpAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Epoch != 1 {
		t.Fatalf("/healthz = %+v", health)
	}

	resp, err = http.Get("http://" + httpAddr + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models station.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models.Procs) == 0 {
		t.Fatal("GET /v1/models returned no procedures")
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit = %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain after cancel\nstdout: %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Fatalf("no drain message:\n%s", stdout.String())
	}
}
