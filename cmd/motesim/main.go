// Command motesim compiles and executes a MiniC program on the simulated
// M16 mote, printing architectural statistics, the debug-port output, and
// optionally the ground-truth branch profile.
//
// Usage:
//
//	motesim [-workload gaussian] [-seed 1] [-tick 8] [-predictor nt|btfn]
//	        [-max-cycles N] [-branches] file.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"codetomo/internal/compile"
	"codetomo/internal/mote"
	"codetomo/internal/stats"
	"codetomo/internal/trace"
	"codetomo/internal/workload"
)

func main() {
	regime := flag.String("workload", "gaussian", "input regime: gaussian, uniform, bursty, regime, diurnal")
	seed := flag.Int64("seed", 1, "workload random seed")
	tick := flag.Int("tick", 8, "timer prescaler in cycles")
	predictor := flag.String("predictor", "nt", "static branch predictor: nt (not-taken) or btfn")
	maxCycles := flag.Uint64("max-cycles", 2_000_000_000, "cycle budget")
	branches := flag.Bool("branches", false, "print per-branch taken/not-taken ground truth")
	fuse := flag.Bool("fuse", false, "enable compare-branch fusion")
	rotate := flag.Bool("rotate", false, "enable loop rotation")
	traceOut := flag.String("trace-out", "", "write the TRACE event log to this file (implies timestamp instrumentation)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: motesim [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opts := compile.Options{FuseCompares: *fuse, RotateLoops: *rotate}
	if *traceOut != "" {
		opts.Instrument = compile.ModeTimestamps
	}
	out, err := compile.Build(string(src), opts)
	if err != nil {
		fatal(err)
	}

	cfg := mote.DefaultConfig()
	cfg.TickDiv = *tick
	switch *predictor {
	case "nt":
		cfg.Predictor = mote.StaticNotTaken{}
	case "btfn":
		cfg.Predictor = mote.BTFN{}
	default:
		fatal(fmt.Errorf("unknown predictor %q", *predictor))
	}
	rng := stats.NewRNG(*seed)
	sensor, ok := workload.Named(*regime, rng)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *regime))
	}
	cfg.Sensor = sensor
	cfg.Entropy = workload.NewEntropy(rng.Fork())

	m := mote.New(out.Code, cfg)
	if err := m.Run(*maxCycles); err != nil {
		fatal(err)
	}

	s := m.Stats()
	fmt.Printf("cycles:        %d\n", s.Cycles)
	fmt.Printf("instructions:  %d\n", s.Instructions)
	fmt.Printf("cond branches: %d\n", s.CondBranches)
	fmt.Printf("taken:         %d\n", s.TakenBranches)
	fmt.Printf("mispredicts:   %d (%.2f%%)\n", s.Mispredicts, 100*float64(s.Mispredicts)/float64(max(s.CondBranches, 1)))
	fmt.Printf("radio packets: %d (%d words)\n", s.RadioPackets, s.RadioWords)
	fmt.Printf("sensor reads:  %d\n", s.SensorReads)
	fmt.Printf("energy:        %.1f uJ\n", mote.DefaultEnergyModel().Energy(s))
	if len(m.DebugOutput()) > 0 {
		fmt.Printf("debug output:  %v\n", m.DebugOutput())
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteEvents(f, m.Trace()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:         %d events -> %s\n", len(m.Trace()), *traceOut)
	}

	if *branches {
		fmt.Println("\nbranch ground truth (pc: taken/total):")
		bs := m.BranchStats()
		pcs := make([]int32, 0, len(bs))
		for pc := range bs {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
		for _, pc := range pcs {
			st := bs[pc]
			total := st.Taken + st.NotTaken
			fmt.Printf("  %5d: %8d/%-8d p=%.3f  %s\n", pc, st.Taken, total,
				float64(st.Taken)/float64(total), out.Code[pc])
		}
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "motesim:", err)
	os.Exit(1)
}
