// Command ctbench regenerates the evaluation: every table and figure of
// the reconstructed ISPASS'15 experiments (see DESIGN.md's per-experiment
// index and EXPERIMENTS.md for the committed results).
//
// Usage:
//
//	ctbench               # run everything
//	ctbench -exp f4       # one experiment
//	ctbench -csv          # emit CSV instead of aligned tables
//	ctbench -json         # emit a JSON array of result tables
//	ctbench -samples 3000 -seed 1234 -tick 8
//
// `ctbench -exp k1 -json` regenerates the committed BENCH_PR4.json
// estimation-kernel numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"codetomo/internal/bench"
	"codetomo/internal/mote"
	"codetomo/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (t1,f2,f3,f4,f5,t2,f6,f7,f8,t3,a1,a2,a3,a4,fl1,fl2,fl3,ft1,ft2,k1,s1,sa1,st1,in1,pg1) or 'all'")
	samples := flag.Int("samples", 0, "handler invocations per profiling run (default from bench.DefaultConfig)")
	seed := flag.Int64("seed", 0, "workload seed (default from bench.DefaultConfig)")
	tick := flag.Int("tick", 0, "timer prescaler (default from bench.DefaultConfig)")
	fleetmax := flag.Int("fleetmax", 0, "largest deployment the fl3 scaling sweep runs (default 1000000; CI smokes lower it)")
	predictor := flag.String("predictor", "", "nt or btfn (default nt)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit a JSON array of result tables (machine-readable)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	cfg := bench.DefaultConfig()
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *tick > 0 {
		cfg.TickDiv = *tick
	}
	if *fleetmax > 0 {
		cfg.MaxFleet = *fleetmax
	}
	switch *predictor {
	case "":
	case "nt":
		cfg.Predictor = mote.StaticNotTaken{}
	case "btfn":
		cfg.Predictor = mote.BTFN{}
	default:
		fatal(fmt.Errorf("unknown predictor %q", *predictor))
	}

	var run []bench.Experiment
	if *exp == "all" {
		run = bench.Experiments()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (valid: %v)", *exp, bench.SortedIDs()))
		}
		run = []bench.Experiment{e}
	}

	type jsonTable struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		*report.Table
	}
	var collected []jsonTable
	for _, e := range run {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		switch {
		case *jsonOut:
			collected = append(collected, jsonTable{ID: e.ID, Title: e.Title, Table: table})
		case *csv:
			fmt.Printf("# %s: %s\n", e.ID, e.Title)
			fmt.Print(table.CSV())
		default:
			fmt.Print(table.Render())
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctbench:", err)
	os.Exit(1)
}
